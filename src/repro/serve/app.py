"""The async serving tier: one warm Session behind an HTTP/1.1 front.

Pure stdlib (``asyncio.start_server`` + hand-rolled HTTP/1.1 -- no
framework dependency), one process, three layers:

1. **Admission control.**  Pool-bound work costs a slot; the server
   holds at most ``concurrency + queue_depth`` slots (``concurrency``
   requests executing on the thread pool, ``queue_depth`` waiting in
   its queue).  A request that would exceed that is rejected
   immediately with a structured 429 -- the pool is never
   oversubscribed and latency under overload stays flat instead of
   collapsing.

2. **Request coalescing.**  Identical concurrent requests (canonical
   key from :func:`~repro.serve.protocol.request_key`) execute once:
   the leader takes the slot, followers await its future for free.
   Observable via ``GET /stats`` and the ``X-Repro-Coalesced`` header.

3. **Execution.**  The blocking verbs run on a ``ThreadPoolExecutor``
   via ``run_in_executor`` against ONE shared
   :class:`~repro.core.session.Session` (thread-safe as of this tier),
   so every request shares warm topology caches and persistent worker
   pools.  ``experiment`` requests with ``shards >= 1`` fan out to
   worker subprocesses instead (:mod:`repro.serve.shard`) and can
   stream cells as NDJSON.

Every request carries a generated id (echoed as ``X-Repro-Request-Id``
and attached to spans and access-log lines), is timed into per-endpoint
latency histograms, and -- with ``--access-log`` -- emits one
structured JSON log line.  ``GET /metrics`` exposes the server's and
the process's instruments in Prometheus text exposition format.

Endpoints::

    GET  /healthz      liveness probe (+ uptime / RSS / version)
    GET  /stats        admission / coalescing / cache / pool counters
                       + per-endpoint latency summaries
    GET  /metrics      Prometheus text exposition
    POST /v1/describe  POST /v1/sweep  POST /v1/design-search
    POST /v1/temporal
    POST /v1/experiment   (``"stream": true`` -> NDJSON cell stream)
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..obs.logging import AccessLogger, new_request_id
from ..obs.metrics import REGISTRY, MetricsRegistry
from ..obs.process import process_info
from ..obs.trace import add_complete_event, now_us, span
from .protocol import (
    ServeError,
    request_key,
    validate_describe,
    validate_design_search,
    validate_experiment,
    validate_sweep,
    validate_temporal,
)
from .coalesce import RequestCoalescer

__all__ = ["ReproServer", "run_server"]

#: Largest accepted request body, bytes (far above any sane request).
MAX_BODY = 4 * 1024 * 1024
#: Largest accepted request-line + headers block, bytes.
MAX_HEAD = 64 * 1024

_JSON_HEADERS = {"Content-Type": "application/json"}
#: ``Content-Type`` of the Prometheus text exposition format.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
#: The endpoints that get their own metric label; anything else
#: (typos, scanners) collapses into ``other`` so label cardinality
#: stays bounded no matter what clients throw at the socket.
_KNOWN_ENDPOINTS = frozenset(
    {
        "/healthz",
        "/stats",
        "/metrics",
        "/v1/describe",
        "/v1/sweep",
        "/v1/design-search",
        "/v1/experiment",
        "/v1/temporal",
    }
)
_REQUESTS_HELP = "HTTP requests by endpoint and status"
_LATENCY_HELP = "HTTP request wall time by endpoint"
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _dumps(payload) -> bytes:
    return json.dumps(payload, sort_keys=True).encode() + b"\n"


class _Admission:
    """Slot counter: ``concurrency + queue_depth`` admitted at most.

    Mutations happen on the event loop, but counters are *read* from
    other threads too (``/stats`` snapshots in tests and benchmarks,
    the metrics renderer), so every access goes through one lock --
    :meth:`stats` is an atomic snapshot, never a torn mid-update view.
    Rejections are counted, never queued -- the bounded queue is the
    executor's own.
    """

    def __init__(self, concurrency: int, queue_depth: int) -> None:
        self.capacity = concurrency + queue_depth
        self.active = 0
        self.admitted = 0
        self.rejected = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            if self.active >= self.capacity:
                self.rejected += 1
                return False
            self.active += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            self.active -= 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "active": self.active,
                "admitted": self.admitted,
                "rejected": self.rejected,
            }


class ReproServer:
    """One Session, one thread pool, one coalescer, one asyncio server.

    ``concurrency`` bounds simultaneous executing requests (thread-pool
    size); ``queue_depth`` bounds how many more may wait; ``workers``
    is the Session's sweep-pool size (``None``: its auto default);
    ``shards`` the default subprocess count for sharded experiments
    (0: run experiments on the shared session in-process);
    ``access_log`` enables structured JSON access logging (``"-"`` for
    stderr, a path, or a file-like object).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        session=None,
        workers=None,
        concurrency: int = 4,
        queue_depth: int = 8,
        shards: int = 0,
        access_log=None,
    ) -> None:
        from ..core.session import Session

        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.host = host
        self.port = port
        self.shards = shards
        self._owns_session = session is None
        self.session = Session(workers=workers) if session is None else session
        self.coalescer = RequestCoalescer()
        self.admission = _Admission(concurrency, queue_depth)
        #: the server's own HTTP instruments (``repro_http_*``); sweep
        #: and cache families live in the process-wide global registry,
        #: and ``/metrics`` renders the union of both
        self.metrics = MetricsRegistry()
        self.access_log = (
            access_log
            if isinstance(access_log, AccessLogger)
            else AccessLogger(access_log)
            if access_log is not None
            else None
        )
        self._started_at = time.time()
        self._executor = ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._stopping: asyncio.Event | None = None
        self._requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful teardown: sockets, thread pool, then the Session.

        Idempotent.  Owned sessions close their worker pools here (the
        pools' ``close``/``join``, so no resource-tracker warnings on
        SIGINT/SIGTERM); injected sessions stay open for their owner.
        """
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)
        if self._owns_session and not self.session.closed:
            self.session.close()

    async def serve_forever(self, *, install_signals: bool = False) -> None:
        """Run until :meth:`stop` (or SIGINT/SIGTERM when installed)."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, self._stopping.set)
        await self._stopping.wait()
        await self.stop()

    def _process_payload(self) -> dict:
        """Uptime / RSS / version -- the restart-and-leak probe fields."""
        info = process_info()
        info["uptime_seconds"] = round(time.time() - self._started_at, 3)
        return info

    def stats(self) -> dict[str, object]:
        """The ``GET /stats`` payload: every tier's counters.

        Each tier's counters are snapshotted under that tier's own
        lock (admission, coalescer, cache), so the payload never shows
        torn mid-update values.  ``latency`` summarizes the
        per-endpoint request histograms (count/sum/mean/p50/p95/p99).
        """
        latency = {
            dict(labels).get("endpoint", ""): histogram.summary()
            for labels, histogram in sorted(
                self.metrics.series("repro_http_request_seconds").items()
            )
        }
        return {
            "admission": self.admission.stats(),
            "coalescer": self.coalescer.stats(),
            "cache": self.session.cache_stats(),
            "pools_started": self.session.pools_started,
            "requests_served": self._requests_served,
            "shards": self.shards,
            "latency": latency,
            **self._process_payload(),
        }

    def render_metrics(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition.

        The union of the server's HTTP instruments and the process-wide
        registry (sweep chunks, cache ops, design-search counters),
        plus synthetic gauges for the admission/coalescer/cache tiers
        and process facts -- one scrape sees the whole server.
        """
        merged = MetricsRegistry()
        merged.merge(REGISTRY.snapshot())
        merged.merge(self.metrics.snapshot())
        admission = self.admission.stats()
        merged.gauge(
            "repro_admission_active", "Requests currently holding a slot"
        ).set(admission["active"])
        merged.gauge(
            "repro_admission_capacity", "Admission slot capacity"
        ).set(admission["capacity"])
        merged.counter(
            "repro_admission_admitted_total", "Requests granted a slot"
        ).inc(admission["admitted"])
        merged.counter(
            "repro_admission_rejected_total", "Requests rejected with 429"
        ).inc(admission["rejected"])
        coalescer = self.coalescer.stats()
        merged.counter(
            "repro_coalescer_leaders_total", "Flights led (work executed)"
        ).inc(coalescer["leaders"])
        merged.counter(
            "repro_coalescer_followers_total", "Duplicate requests absorbed"
        ).inc(coalescer["followers"])
        merged.gauge(
            "repro_coalescer_in_flight", "Coalesced flights currently open"
        ).set(coalescer["in_flight"])
        cache = self.session.cache_stats()
        for key in ("hits", "misses", "evictions"):
            merged.counter(
                f"repro_session_cache_{key}_total",
                f"Session spec-cache {key}",
            ).inc(cache[key])
        merged.gauge(
            "repro_session_cache_size", "Cached built networks"
        ).set(cache["size"])
        merged.gauge(
            "repro_pools_started", "Persistent worker pools alive"
        ).set(self.session.pools_started)
        merged.counter(
            "repro_requests_served_total", "Requests answered successfully"
        ).inc(self._requests_served)
        info = self._process_payload()
        merged.gauge(
            "repro_server_uptime_seconds", "Seconds since server start"
        ).set(info["uptime_seconds"])
        merged.gauge(
            "repro_process_rss_bytes", "Resident set size"
        ).set(info["rss_bytes"])
        merged.gauge(
            "repro_build_info",
            "Constant 1; the version label carries the package version",
            {"version": info["version"]},
        ).set(1)
        return merged.render_prometheus()

    # ------------------------------------------------------------------
    # HTTP plumbing.
    # ------------------------------------------------------------------
    def _new_ctx(self, writer) -> dict:
        """Per-request context: id, clocks, and what the response was."""
        peer = writer.get_extra_info("peername")
        return {
            "id": new_request_id(),
            "start_us": now_us(),
            "t0": time.perf_counter(),
            "method": "",
            "target": "",
            "status": 0,
            "bytes": 0,
            "coalesced": "",
            "peer": f"{peer[0]}:{peer[1]}" if peer else "",
        }

    def _finish_request(self, ctx: dict) -> None:
        """Record one finished request: metrics, access log, trace event.

        ``status`` 0 means the connection died before any response was
        attempted (client hang-up mid-head) -- nothing to record.
        """
        if not ctx["status"]:
            return
        endpoint = (
            ctx["target"] if ctx["target"] in _KNOWN_ENDPOINTS else "other"
        )
        seconds = time.perf_counter() - ctx["t0"]
        self.metrics.counter(
            "repro_http_requests_total",
            _REQUESTS_HELP,
            {"endpoint": endpoint, "status": str(ctx["status"])},
        ).inc()
        self.metrics.histogram(
            "repro_http_request_seconds", _LATENCY_HELP,
            {"endpoint": endpoint},
        ).observe(seconds)
        if self.access_log is not None:
            self.access_log.log(
                request_id=ctx["id"],
                peer=ctx["peer"],
                method=ctx["method"],
                target=ctx["target"],
                status=ctx["status"],
                duration_ms=round(seconds * 1e3, 3),
                bytes=ctx["bytes"],
                coalesced=ctx["coalesced"] or None,
            )
        add_complete_event(
            "serve.request",
            ctx["start_us"],
            now_us() - ctx["start_us"],
            args={
                "request_id": ctx["id"],
                "method": ctx["method"],
                "target": ctx["target"],
                "status": ctx["status"],
                "coalesced": ctx["coalesced"],
            },
        )

    async def _handle_connection(self, reader, writer) -> None:
        ctx = self._new_ctx(writer)
        try:
            try:
                with span("serve.parse", request_id=ctx["id"]):
                    head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.LimitOverrunError:
                await self._respond(
                    writer, 413, ServeError(
                        "request head too large", code="bad_request",
                        status=413,
                    ).payload(), ctx=ctx,
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if len(head) > MAX_HEAD:
                await self._respond(
                    writer, 413, ServeError(
                        "request head too large", code="bad_request",
                        status=413,
                    ).payload(), ctx=ctx,
                )
                return
            method, target, headers = self._parse_head(head)
            ctx["method"], ctx["target"] = method, target
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY:
                await self._respond(
                    writer, 413, ServeError(
                        f"request body over {MAX_BODY} bytes",
                        code="bad_request", status=413,
                    ).payload(), ctx=ctx,
                )
                return
            if length:
                body = await reader.readexactly(length)
            await self._dispatch(writer, method, target, body, ctx)
        except ServeError as exc:
            await self._respond(writer, exc.status, exc.payload(), ctx=ctx)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # never leak a traceback as raw bytes
            await self._respond(
                writer, 500, ServeError(
                    f"{type(exc).__name__}: {exc}",
                    code="internal", status=500,
                ).payload(), ctx=ctx,
            )
        finally:
            self._finish_request(ctx)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _parse_head(head: bytes):
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ServeError(f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _respond(
        self, writer, status: int, payload, *, extra=None, ctx=None
    ) -> None:
        await self._write_response(
            writer, status, _dumps(payload), {**_JSON_HEADERS, **(extra or {})},
            ctx=ctx,
        )

    async def _respond_text(
        self, writer, status: int, text: str, content_type: str, *, ctx=None
    ) -> None:
        await self._write_response(
            writer, status, text.encode("utf-8"),
            {"Content-Type": content_type}, ctx=ctx,
        )

    async def _write_response(
        self, writer, status: int, body: bytes, headers: dict, *, ctx=None
    ) -> None:
        if ctx is not None:
            headers = {**headers, "X-Repro-Request-Id": ctx["id"]}
            ctx["status"] = status
            ctx["bytes"] = len(body)
        head = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
        head += [f"{k}: {v}" for k, v in headers.items()]
        head += [f"Content-Length: {len(body)}", "Connection: close", "", ""]
        writer.write("\r\n".join(head).encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing and verb execution.
    # ------------------------------------------------------------------
    async def _dispatch(self, writer, method, target, body, ctx) -> None:
        if target in ("/healthz", "/stats", "/metrics") and method != "GET":
            raise ServeError(
                f"{target} is GET-only", code="bad_request", status=405
            )
        if target == "/healthz":
            await self._respond(
                writer, 200, {"ok": True, **self._process_payload()}, ctx=ctx
            )
            return
        if target == "/stats":
            await self._respond(writer, 200, self.stats(), ctx=ctx)
            return
        if target == "/metrics":
            await self._respond_text(
                writer, 200, self.render_metrics(), _METRICS_CONTENT_TYPE,
                ctx=ctx,
            )
            return
        if not target.startswith("/v1/"):
            raise ServeError(
                f"no such endpoint {target!r}", code="not_found", status=404
            )
        verb = target[len("/v1/"):]
        if verb not in (
            "describe", "sweep", "design-search", "experiment", "temporal"
        ):
            raise ServeError(
                f"no such verb {verb!r}", code="not_found", status=404
            )
        if method != "POST":
            raise ServeError(
                f"/v1/{verb} is POST-only", code="bad_request", status=405
            )
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"request body is not valid JSON: {exc}"
            ) from None
        if verb == "experiment":
            await self._handle_experiment(writer, payload, ctx)
        else:
            await self._handle_simple(writer, verb, payload, ctx)

    def _run_verb(self, verb: str, normalized: dict):
        """Blocking execution of one normalized request (pool thread)."""
        if verb == "describe":
            return self.session.describe(normalized["spec"])
        if verb == "sweep":
            return self.session.resilience_sweep(
                normalized["spec"],
                **{k: v for k, v in normalized.items() if k != "spec"},
            ).as_dict()
        if verb == "design-search":
            return self.session.design_search(**normalized).as_dict()
        if verb == "temporal":
            return self.session.temporal_sweep(
                normalized["spec"],
                **{k: v for k, v in normalized.items() if k != "spec"},
            ).as_dict()
        raise ServeError(f"no such verb {verb!r}", status=404)

    async def _handle_simple(self, writer, verb, payload, ctx) -> None:
        validator = {
            "describe": validate_describe,
            "sweep": validate_sweep,
            "design-search": validate_design_search,
            "temporal": validate_temporal,
        }[verb]
        with span("serve.validate", request_id=ctx["id"], verb=verb):
            normalized = validator(payload)
        key = request_key(verb, normalized)
        result, role = await self._coalesced(
            key, lambda: self._run_verb(verb, normalized), ctx
        )
        self._requests_served += 1
        ctx["coalesced"] = role
        await self._respond(
            writer, 200, result, extra={"X-Repro-Coalesced": role}, ctx=ctx
        )

    async def _coalesced(self, key: str, work, ctx=None):
        """Single-flight + admission: the heart of the serving tier.

        Followers join the in-flight future without taking an
        admission slot (they cost nothing).  The leader must win a
        slot BEFORE registering the flight -- a rejected request must
        not become a flight that followers pile onto.  No await
        between ``join`` and ``lead``, so flights never duplicate.
        """
        request_id = ctx["id"] if ctx else ""
        existing = self.coalescer.join(key)
        if existing is not None:
            with span("serve.coalesce", request_id=request_id,
                      role="follower"):
                return await existing, "follower"
        with span("serve.admission", request_id=request_id):
            admitted = self.admission.try_acquire()
        if not admitted:
            raise ServeError(
                "server at capacity, retry later",
                code="overloaded",
                status=429,
                details=self.admission.stats(),
            )
        future = self.coalescer.lead(key)
        loop = asyncio.get_running_loop()
        try:
            with span("serve.execute", request_id=request_id):
                result = await loop.run_in_executor(self._executor, work)
        except ServeError as exc:
            self.coalescer.resolve(key, future, error=exc)
            raise
        except Exception as exc:
            wrapped = ServeError(
                f"{type(exc).__name__}: {exc}", code="internal", status=500
            )
            self.coalescer.resolve(key, future, error=wrapped)
            raise wrapped from exc
        finally:
            self.admission.release()
        self.coalescer.resolve(key, future, result=result)
        return result, "leader"

    # ------------------------------------------------------------------
    # Experiments: in-process, sharded, or streamed.
    # ------------------------------------------------------------------
    async def _handle_experiment(self, writer, payload, ctx) -> None:
        from .shard import run_sharded_experiment

        stream = bool(payload.get("stream", False)) if isinstance(
            payload, dict
        ) else False
        with span("serve.validate", request_id=ctx["id"], verb="experiment"):
            experiment, normalized = validate_experiment(payload)
        shards = normalized["shards"] or self.shards
        if stream:
            await self._stream_experiment(writer, experiment, shards, ctx)
            return
        if shards >= 1:
            def work():
                return run_sharded_experiment(experiment, shards=shards)
        else:
            def work():
                return self.session.run_experiment(experiment).as_dict()
        key = request_key("experiment", {**normalized, "shards": shards})
        result, role = await self._coalesced(key, work, ctx)
        self._requests_served += 1
        ctx["coalesced"] = role
        await self._respond(
            writer, 200, result, extra={"X-Repro-Coalesced": role}, ctx=ctx
        )

    async def _stream_experiment(self, writer, experiment, shards, ctx) -> None:
        """NDJSON: header line, one line per cell in index order, footer.

        A worker thread drives :func:`iter_sharded_cells` and feeds an
        asyncio queue; cells go over the wire the moment the in-order
        merge releases them.  Streams hold an admission slot for their
        whole duration (they occupy an executor thread) and are never
        coalesced -- each stream owns its subprocesses.
        """
        from .shard import iter_sharded_cells

        if not self.admission.try_acquire():
            raise ServeError(
                "server at capacity, retry later",
                code="overloaded",
                status=429,
                details=self.admission.stats(),
            )
        loop = asyncio.get_running_loop()
        feed: asyncio.Queue = asyncio.Queue()

        def pump() -> None:
            try:
                for index, cell in iter_sharded_cells(
                    experiment, shards=max(shards, 1)
                ):
                    loop.call_soon_threadsafe(
                        feed.put_nowait, ("cell", index, cell)
                    )
                loop.call_soon_threadsafe(feed.put_nowait, ("end", None, None))
            except BaseException as exc:
                loop.call_soon_threadsafe(feed.put_nowait, ("error", None, exc))

        ctx["status"] = 200
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"X-Repro-Request-Id: " + ctx["id"].encode("latin-1") + b"\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(_dumps({"experiment": experiment.as_dict()}))
        await writer.drain()
        pumping = loop.run_in_executor(self._executor, pump)
        cells = 0
        try:
            while True:
                tag, index, cell = await feed.get()
                if tag == "cell":
                    writer.write(_dumps({"index": index, "cell": cell}))
                    await writer.drain()
                    cells += 1
                elif tag == "end":
                    writer.write(_dumps({"done": True, "cells": cells}))
                    await writer.drain()
                    break
                else:
                    writer.write(
                        _dumps({"error": {
                            "code": "internal",
                            "message": f"{type(cell).__name__}: {cell}",
                        }})
                    )
                    await writer.drain()
                    break
        finally:
            await pumping
            self.admission.release()
            self._requests_served += 1


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    workers=None,
    concurrency: int = 4,
    queue_depth: int = 8,
    shards: int = 0,
    ready=None,
    access_log=None,
) -> None:
    """Blocking entry point (the CLI's ``repro serve``).

    Installs SIGINT/SIGTERM handlers for graceful shutdown: stop
    accepting, drain the thread pool, close the Session's worker
    pools.  ``ready`` (optional callable) fires with the bound port
    once the socket is listening -- the test/bench harness hook.
    ``access_log`` (path, ``"-"`` for stderr, or ``None`` to disable)
    enables one structured JSON line per request.
    """

    async def main() -> None:
        server = ReproServer(
            host=host,
            port=port,
            workers=workers,
            concurrency=concurrency,
            queue_depth=queue_depth,
            shards=shards,
            access_log=access_log,
        )
        await server.start()
        if ready is not None:
            ready(server.port)
        await server.serve_forever(install_signals=True)

    asyncio.run(main())
