"""All-to-one reduction schedules (the dual of broadcast).

Combining values toward a root (sum, max, ...) runs broadcast's tree
backwards: leaves transmit first, inner groups combine what they heard
with their own data, and the root group finishes.  The one-to-many
coupler doesn't help fan-in (only one sender per coupler per slot),
so reduction is governed by in-degree contention rather than distance
alone -- a genuinely different cost profile from broadcast, measured
here.

Schedules are verified by replaying them with multiset semantics: at
completion the root must hold exactly one contribution from every
processor (no value lost, none double-counted -- the invariant that
makes non-idempotent reductions like ``sum`` correct).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.pops import POPSNetwork
from ..networks.stack_kautz import StackKautzNetwork
from ..routing.tables import build_routing_table

__all__ = ["ReduceSchedule", "pops_reduce", "stack_kautz_reduce"]


@dataclass(frozen=True)
class ReduceSchedule:
    """A verified reduction schedule.

    ``slots[r]`` lists the transmissions of round ``r`` as
    ``(sender, coupler_key)``; the payload of a transmission is the
    sender's accumulated partial result.
    """

    root: int
    slots: tuple[tuple[tuple[int, object], ...], ...]

    @property
    def num_slots(self) -> int:
        """Rounds used."""
        return len(self.slots)


def pops_reduce(net: POPSNetwork, root: int) -> ReduceSchedule:
    """Reduction to ``root`` on ``POPS(t, g)`` in ``t`` slots.

    Slot ``y``: member ``y`` of every group sends its (single) value on
    the coupler toward the root's group; the root hears all ``g``
    couplers simultaneously (it owns ``g`` receivers) and folds ``g``
    values per slot.  ``t`` slots drain every group position.

    The root's own value needs no slot.  Lower bound: the root can
    absorb at most ``g`` values per slot, so ``ceil((N-1)/g)`` slots --
    this schedule is within one slot of it.
    """
    j_root = net.group_of(root)
    t, g = net.group_size, net.num_groups
    received: set[int] = {root}
    slots = []
    for y in range(t):
        transmissions = []
        for i in range(g):
            sender = net.processor_id(i, y)
            if sender == root:
                continue
            transmissions.append((sender, net.coupler_label_between(i, j_root)))
        keys = [c for _, c in transmissions]
        if len(set(keys)) != len(keys):
            raise AssertionError("coupler collision in reduce slot")
        for sender, _c in transmissions:
            if sender in received:
                raise AssertionError(f"value of {sender} double-counted")
            received.add(sender)
        slots.append(tuple(transmissions))
    if len(received) != net.num_processors:
        raise AssertionError("reduction lost contributions")
    return ReduceSchedule(root, tuple(slots))


def stack_kautz_reduce(net: StackKautzNetwork, root: int) -> ReduceSchedule:
    """Convergecast to ``root`` on ``SK(s, d, k)``.

    Three phases, interleaved greedily:

    1. each group locally folds its ``s`` values: members take turns on
       the group's loop coupler (s-1 slots, all groups in parallel);
    2. groups forward partial sums along shortest paths to the root's
       group, deepest groups first; a group transmits only after it has
       heard every child that routes through it (correctness for
       non-idempotent operators);
    3. the root's group folds the last incoming partials (the root
       hears every inbound coupler directly).

    Slot count is reported by construction and verified by replay.
    """
    base = net.base_graph().without_loops()
    root_group, _ = net.label_of(root)
    table = build_routing_table(base)
    s = net.stacking_factor

    # Convergecast tree: parent of group u = next hop toward root group.
    parent: dict[int, int] = {}
    depth: dict[int, int] = {}
    for u in range(net.num_groups):
        if u == root_group:
            depth[u] = 0
            continue
        parent[u] = table.next_hop(u, root_group)
        depth[u] = table.distance(u, root_group)

    children: dict[int, list[int]] = {u: [] for u in range(net.num_groups)}
    for u, p in parent.items():
        children[p].append(u)

    # Contributions held by each group's accumulator (its lowest member
    # after local folding): start with the group's own members.
    holds: dict[int, set[int]] = {
        u: set(net.group_members(u).tolist()) for u in range(net.num_groups)
    }
    pending_children: dict[int, set[int]] = {
        u: set(children[u]) for u in range(net.num_groups)
    }

    slots: list[tuple[tuple[int, object], ...]] = []

    # Phase 1: local folds (loop coupler), all groups in parallel.
    for y in range(1, s):
        transmissions = tuple(
            (net.processor_id(u, y), (u, u)) for u in range(net.num_groups)
        )
        slots.append(transmissions)

    # Phase 2/3: groups transmit to parents once all children reported.
    sent: set[int] = set()
    max_rounds = 2 * (max(depth.values(), default=0) + 1) + 2
    for _ in range(max_rounds):
        ready = [
            u
            for u in range(net.num_groups)
            if u != root_group and u not in sent and not pending_children[u]
        ]
        if not ready:
            break
        transmissions = []
        for u in ready:
            p = parent[u]
            accumulator = int(net.group_members(u)[0])
            transmissions.append((accumulator, (u, p)))
        keys = [c for _, c in transmissions]
        if len(set(keys)) != len(keys):
            raise AssertionError("coupler collision in convergecast slot")
        for u in ready:
            p = parent[u]
            holds[p] |= holds[u]
            pending_children[p].discard(u)
            sent.add(u)
        slots.append(tuple(transmissions))

    if holds[root_group] != set(range(net.num_processors)):
        missing = set(range(net.num_processors)) - holds[root_group]
        raise AssertionError(f"reduction incomplete: missing {sorted(missing)[:5]}")
    return ReduceSchedule(root, tuple(slots))
