"""Collective communication and embeddings on multi-OPS networks.

* :func:`pops_broadcast` / :func:`stack_kautz_broadcast` -- verified
  one-to-all schedules (1 slot vs <= k slots);
* :func:`pops_gossip` / :func:`stack_kautz_gossip` -- all-to-all;
* :func:`embed_guest`, :func:`ring_embedding`,
  :func:`hypercube_embedding` -- guest topologies with
  dilation/congestion metrics (after [3]).
"""

from .broadcast import (
    BroadcastSchedule,
    pops_broadcast,
    pops_scatter,
    stack_kautz_broadcast,
)
from .embedding import (
    EmbeddingReport,
    embed_guest,
    hypercube_embedding,
    hypercube_graph,
    ring_embedding,
)
from .gossip import GossipSchedule, pops_gossip, stack_kautz_gossip
from .reduce import ReduceSchedule, pops_reduce, stack_kautz_reduce

__all__ = [
    "BroadcastSchedule",
    "EmbeddingReport",
    "GossipSchedule",
    "ReduceSchedule",
    "embed_guest",
    "hypercube_embedding",
    "hypercube_graph",
    "pops_broadcast",
    "pops_gossip",
    "pops_reduce",
    "pops_scatter",
    "ring_embedding",
    "stack_kautz_broadcast",
    "stack_kautz_gossip",
    "stack_kautz_reduce",
]
