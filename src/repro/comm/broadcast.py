"""One-to-all broadcast schedules exploiting OPS one-to-many couplers.

The whole point of modeling OPS networks as hypergraphs (Sec. 1) is
that a single transmission informs *many* processors.  These schedules
turn that into slot counts:

* POPS: **1 slot** -- the source drives all ``g`` of its transmitters
  at once; couplers ``(src_group, j)`` for every ``j`` deliver to all
  groups simultaneously (including the source's own group via the loop
  coupler ``(i, i)``).
* stack-Kautz: **k slots** -- flooding along the Kautz graph; after
  round ``r`` every group within distance ``r`` is informed (all ``s``
  members at once, because the coupler is a hyperarc), and the loop
  coupler covers the source's own group in round 1.

Every schedule is *verified*, not asserted: the functions replay the
slots over the hypergraph, tracking informed sets and checking the
single-sender-per-coupler constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.pops import POPSNetwork
from ..networks.stack_kautz import StackKautzNetwork

__all__ = [
    "BroadcastSchedule",
    "pops_broadcast",
    "pops_scatter",
    "stack_kautz_broadcast",
]


@dataclass(frozen=True)
class BroadcastSchedule:
    """A verified broadcast schedule.

    ``slots[r]`` lists the transmissions of round ``r`` as
    ``(sender, coupler_key)`` pairs; ``coupler_key`` identifies a
    coupler in the owning network's coupler order.
    """

    source: int
    slots: tuple[tuple[tuple[int, object], ...], ...]
    informed: int  # processors informed at completion

    @property
    def num_slots(self) -> int:
        """Rounds used."""
        return len(self.slots)


def pops_broadcast(net: POPSNetwork, src: int) -> BroadcastSchedule:
    """One-slot broadcast on ``POPS(t, g)`` from processor ``src``.

    >>> pops_broadcast(POPSNetwork(4, 2), 3).num_slots
    1
    """
    i = net.group_of(src)
    transmissions = tuple(
        (src, net.coupler_label_between(i, j)) for j in range(net.num_groups)
    )
    # Verify: one sender per coupler (trivially true: couplers are
    # distinct labels) and full coverage.
    couplers = [c for _, c in transmissions]
    if len(set(couplers)) != len(couplers):
        raise AssertionError("duplicate coupler use in one slot")
    informed = {src}
    for _, (gi, gj) in transmissions:
        _ = gi
        informed.update(net.group_members(gj).tolist())
    if len(informed) != net.num_processors:
        raise AssertionError("broadcast failed to inform every processor")
    return BroadcastSchedule(src, (transmissions,), len(informed))


def pops_scatter(net: POPSNetwork, src: int) -> BroadcastSchedule:
    """Personalized one-to-all (scatter) from ``src``: ``t`` slots.

    Unlike broadcast, every destination gets a *distinct* message, so
    the one-to-many coupler no longer collapses the work: messages to
    the same destination group share a coupler and serialize.  The
    source drives all ``g`` ports per slot -- slot ``y`` delivers to
    member ``y`` of every group -- so ``t`` slots move all ``N - 1``
    messages (the slot targeting the source itself is reused for its
    own group's remaining member when ``t > 1``).

    Returns the schedule with per-slot ``(src, coupler)`` transmissions
    (one per destination written); verified for coverage and coupler
    exclusivity.

    >>> pops_scatter(POPSNetwork(4, 2), 0).num_slots
    4
    """
    i = net.group_of(src)
    t, g = net.group_size, net.num_groups
    delivered: set[int] = set()
    slots: list[tuple[tuple[int, object], ...]] = []
    for y in range(t):
        transmissions = []
        for j in range(g):
            dst = net.processor_id(j, y)
            if dst == src:
                continue
            transmissions.append((src, net.coupler_label_between(i, j)))
            delivered.add(dst)
        keys = [c for _, c in transmissions]
        if len(set(keys)) != len(keys):
            raise AssertionError("coupler collision in scatter slot")
        if transmissions:
            slots.append(tuple(transmissions))
    expected = set(range(net.num_processors)) - {src}
    if delivered != expected:
        raise AssertionError(f"scatter missed {sorted(expected - delivered)[:5]}")
    return BroadcastSchedule(src, tuple(slots), len(delivered) + 1)


def stack_kautz_broadcast(net: StackKautzNetwork, src: int) -> BroadcastSchedule:
    """Flooding broadcast on ``SK(s, d, k)``: at most ``k`` slots.

    Round ``r``: every group informed in rounds ``< r`` transmits on
    all of its out-couplers not yet used (one sender per coupler: the
    lowest-id informed member).  The loop coupler of the source's group
    runs in round 1, so the source's siblings are informed early; all
    other groups' members are informed the moment their group first
    receives (hyperarc = everyone hears).

    >>> net = StackKautzNetwork(6, 3, 2)
    >>> stack_kautz_broadcast(net, 0).num_slots <= net.diameter
    True
    """
    base = net.base_graph()
    src_group, _ = net.label_of(src)
    informed_groups = {src_group}
    informed_procs = {src}
    slots: list[tuple[tuple[int, object], ...]] = []
    used_couplers: set[tuple[int, int]] = set()

    while len(informed_procs) < net.num_processors:
        transmissions: list[tuple[int, object]] = []
        newly_groups: set[int] = set()
        for u in sorted(informed_groups):
            sender = min(
                p for p in net.group_members(u).tolist() if p in informed_procs
            )
            for v in set(base.successors(u).tolist()):
                if (u, v) in used_couplers:
                    continue
                if v != u and v in informed_groups:
                    continue  # nothing new to tell that group
                if v == u and set(net.group_members(u).tolist()) <= informed_procs:
                    continue
                used_couplers.add((u, v))
                transmissions.append((sender, (u, v)))
                newly_groups.add(v)
        if not transmissions:
            raise AssertionError("broadcast stalled before full coverage")
        # Verify single sender per coupler within the slot.
        keys = [c for _, c in transmissions]
        if len(set(keys)) != len(keys):
            raise AssertionError("coupler collision in broadcast slot")
        for v in newly_groups:
            informed_groups.add(v)
            informed_procs.update(net.group_members(v).tolist())
        slots.append(tuple(transmissions))

    return BroadcastSchedule(src, tuple(slots), len(informed_procs))
