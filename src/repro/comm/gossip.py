"""All-to-all broadcast (gossiping) schedules.

Every processor's datum must reach every processor.  On a POPS the
couplers give a clean ``t``-slot schedule (one slot per in-group
position: in slot ``y``, member ``y`` of *every* group transmits on all
``g`` of its couplers -- couplers ``(i, j)`` each carry exactly one
sender, group ``i``'s member ``y``).  On a stack-Kautz the same
position-parallel trick pipelines over the Kautz flooding tree, giving
``t * k``-ish slots; we build it greedily and verify coverage exactly.

These schedules feed the EXT-2 comparison: single-hop pays hardware
(``g`` transceivers/processor) where multi-hop pays slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.pops import POPSNetwork
from ..networks.stack_kautz import StackKautzNetwork

__all__ = ["GossipSchedule", "pops_gossip", "stack_kautz_gossip"]


@dataclass(frozen=True)
class GossipSchedule:
    """A verified gossip schedule: ``slots[r]`` = ``(sender, coupler)``."""

    slots: tuple[tuple[tuple[int, object], ...], ...]

    @property
    def num_slots(self) -> int:
        """Rounds used."""
        return len(self.slots)


def pops_gossip(net: POPSNetwork) -> GossipSchedule:
    """``t``-slot gossip on ``POPS(t, g)``.

    Slot ``y``: member ``y`` of each group broadcasts to all groups.
    After ``t`` slots every datum has been on the air exactly once and
    every processor heard every coupler involved.

    >>> pops_gossip(POPSNetwork(4, 2)).num_slots
    4
    """
    t, g = net.group_size, net.num_groups
    heard: list[set[int]] = [set((p,)) for p in range(net.num_processors)]
    slots = []
    for y in range(t):
        transmissions = []
        for i in range(g):
            sender = net.processor_id(i, y)
            for j in range(g):
                transmissions.append((sender, net.coupler_label_between(i, j)))
        keys = [c for _, c in transmissions]
        if len(set(keys)) != len(keys):
            raise AssertionError("coupler collision in gossip slot")
        for sender, (_gi, gj) in transmissions:
            # Single-hop: each sender airs its own datum once.
            for p in net.group_members(gj).tolist():
                heard[p].add(sender)
        slots.append(tuple(transmissions))
    full = set(range(net.num_processors))
    for p in range(net.num_processors):
        if heard[p] != full:
            raise AssertionError(f"processor {p} missed data: {full - heard[p]}")
    return GossipSchedule(tuple(slots))


def stack_kautz_gossip(net: StackKautzNetwork) -> GossipSchedule:
    """Greedy store-and-forward gossip on ``SK(s, d, k)``.

    Every slot, every group transmits on *all* its out-couplers the
    datum set it holds (modeled as set union -- data items are small
    and combinable, the standard gossip assumption); the sender on each
    coupler is the group's lowest-id member.  Terminates when every
    processor holds all ``N`` data.  The slot count is reported, and a
    lower bound of ``max(k, ceil(s * log))``-flavor applies; benchmarks
    compare it against POPS's ``t``.

    >>> net = StackKautzNetwork(2, 2, 2)
    >>> stack_kautz_gossip(net).num_slots >= net.diameter
    True
    """
    base = net.base_graph()
    n = net.num_processors
    # Group-level knowledge: data known to (all members of) each group.
    # A processor's own datum starts known only to itself; the first
    # loop/neighbor transmission spreads the *sender's* whole knowledge.
    proc_know: list[set[int]] = [{p} for p in range(n)]
    slots = []
    for _round in range(4 * (net.diameter + net.stacking_factor) + 8):
        if all(len(kn) == n for kn in proc_know):
            break
        transmissions = []
        updates: list[tuple[int, set[int]]] = []
        for u in range(net.num_groups):
            members = net.group_members(u).tolist()
            # Sender: the member with the largest knowledge (greedy).
            sender = max(members, key=lambda p: (len(proc_know[p]), -p))
            payload = set(proc_know[sender])
            for v in set(base.successors(u).tolist()):
                transmissions.append((sender, (u, v)))
                for p in net.group_members(v).tolist():
                    updates.append((p, payload))
        keys = [c for _, c in transmissions]
        if len(set(keys)) != len(keys):
            raise AssertionError("coupler collision in gossip slot")
        for p, payload in updates:
            proc_know[p].update(payload)
        slots.append(tuple(transmissions))
    else:
        raise AssertionError("gossip failed to converge within the round cap")
    if not all(len(kn) == n for kn in proc_know):
        raise AssertionError("gossip incomplete")
    return GossipSchedule(tuple(slots))
