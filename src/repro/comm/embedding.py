"""Guest-topology embeddings into multi-OPS hosts (after ref [3]).

Berthome and Ferreira showed stack-graph models improve embeddings in
POPS networks; this module provides the machinery and two classical
guests:

* :func:`embed_guest` -- evaluate any mapping: dilation (worst hop
  distance of a guest arc) and congestion (worst per-coupler load when
  every guest arc routes along its host route);
* :func:`ring_embedding` -- a dilation-1 Hamiltonian ring in any
  stack-graph whose base has loops and a Hamiltonian cycle (POPS and
  stack-Kautz both qualify: ``K+_g`` trivially, Kautz by [18]);
* :func:`hypercube_embedding` -- the binary hypercube into POPS
  (dilation 1 -- POPS is single-hop -- with congestion measured, the
  quantity [3] optimizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.digraph import DiGraph
from ..graphs.properties import find_hamiltonian_cycle
from ..hypergraphs.stack_graph import StackGraph
from ..routing.tables import build_routing_table

__all__ = [
    "EmbeddingReport",
    "embed_guest",
    "ring_embedding",
    "hypercube_graph",
    "hypercube_embedding",
]


@dataclass(frozen=True)
class EmbeddingReport:
    """Quality metrics of a guest-into-host embedding."""

    guest_arcs: int
    dilation: int
    congestion: int
    expansion: float  # host processors / guest nodes

    def row(self) -> str:
        """One formatted results row."""
        return (
            f"arcs={self.guest_arcs:>5}  dilation={self.dilation}  "
            f"congestion={self.congestion}  expansion={self.expansion:.2f}"
        )


def embed_guest(
    host: StackGraph, guest: DiGraph, mapping: list[int]
) -> EmbeddingReport:
    """Evaluate ``mapping`` (guest node -> host processor).

    Guest arcs are routed along shortest base-graph (group) routes;
    dilation counts optical hops, congestion counts guest arcs per
    coupler (hyperarc), including loop couplers for same-group hops.
    """
    if len(mapping) != guest.num_nodes:
        raise ValueError("mapping must cover every guest node")
    if len(set(mapping)) != len(mapping):
        raise ValueError("mapping must be injective")
    for p in mapping:
        if not 0 <= p < host.num_nodes:
            raise ValueError(f"host processor {p} out of range")

    base = host.base
    table = build_routing_table(base.without_loops())
    arc_to_hyper: dict[tuple[int, int], int] = {}
    for idx, (u, v) in enumerate(base.arc_array().tolist()):
        arc_to_hyper.setdefault((u, v), idx)

    load = np.zeros(host.num_hyperarcs, dtype=np.int64)
    dilation = 0
    for gu, gv in guest.arcs:
        pu, pv = mapping[gu], mapping[gv]
        bu, bv = host.project(pu), host.project(pv)
        if pu == pv:
            continue  # guest loop: no optical hop
        if bu == bv:
            hops = [(bu, bu)]
        else:
            path = table.path(bu, bv)
            if path is None:
                raise ValueError(f"host cannot route group {bu} -> {bv}")
            hops = list(zip(path, path[1:]))
        dilation = max(dilation, len(hops))
        for (a, b) in hops:
            key = (a, b)
            if key not in arc_to_hyper:
                raise ValueError(f"no coupler for base arc {key}")
            load[arc_to_hyper[key]] += 1
    return EmbeddingReport(
        guest_arcs=guest.num_arcs,
        dilation=int(dilation),
        congestion=int(load.max()) if load.size else 0,
        expansion=host.num_nodes / max(guest.num_nodes, 1),
    )


def ring_embedding(host: StackGraph) -> list[int]:
    """A dilation-1 ring visiting every host processor once.

    Walk a Hamiltonian cycle of the base graph; inside each group visit
    all ``s`` members consecutively (each sibling step is 1 hop over
    the group's loop coupler), then take the base arc to the next
    group.  Requires every group to carry a loop (true for ``K+_g`` and
    ``KG+``) when ``s > 1``.

    Returns the processor sequence; consecutive entries (cyclically)
    are always one optical hop apart.
    """
    base = host.base
    s = host.stacking_factor
    if base.num_nodes == 1:
        cycle = [0, 0]
    else:
        ham = find_hamiltonian_cycle(base.without_loops())
        if ham is None:
            raise ValueError("base graph: no Hamiltonian cycle found")
        cycle = ham
    if s > 1:
        for u in set(cycle):
            if not base.has_arc(u, u):
                raise ValueError(f"group {u} lacks a loop coupler; s > 1 ring impossible")
    order: list[int] = []
    for u in cycle[:-1]:
        order.extend(host.group_members(u).tolist())
    return order


def hypercube_graph(dimension: int) -> DiGraph:
    """The directed binary ``dimension``-cube (arcs both ways per edge)."""
    if dimension < 0:
        raise ValueError(f"dimension must be >= 0, got {dimension}")
    n = 1 << dimension
    arcs = [
        (u, u ^ (1 << b)) for u in range(n) for b in range(dimension)
    ]
    return DiGraph(n, arcs, name=f"Q{dimension}")


def hypercube_embedding(host: StackGraph, dimension: int) -> EmbeddingReport:
    """Embed ``Q_dimension`` into ``host`` by identity numbering.

    For POPS hosts the dilation is always 1 (single-hop network); the
    congestion is what varies with how cube coordinates split across
    groups -- the effect [3] studies.
    """
    guest = hypercube_graph(dimension)
    if guest.num_nodes > host.num_nodes:
        raise ValueError(
            f"hypercube Q{dimension} ({guest.num_nodes} nodes) exceeds host ({host.num_nodes})"
        )
    return embed_guest(host, guest, list(range(guest.num_nodes)))
