"""OTIS-G "swap" networks (Zane-Marchand-Paturi-Esener [24]).

The paper's Sec. 2.1 recalls that OTIS also builds *point-to-point*
multiprocessors: take any factor network G on ``n`` nodes, make ``n``
groups each holding a copy of G (electronic, intra-group wires), and
connect group ``g``'s processor ``p`` to group ``p``'s processor ``g``
optically -- one OTIS(n, n) supplies every inter-group link.  The
conclusion invites studying such networks through the Imase-Itoh view;
this module builds the family and regenerates the classical facts:

* ``N = n**2`` processors, degree ``deg(G) + 1`` (the +1 is the single
  optical transpose port);
* diameter ``<= 2*diam(G) + 1`` (go to the row, swap, go to the
  column);
* the transpose arcs alone are exactly the fixed OTIS(n, n)
  involution, i.e. the arc set of ``II(n, n)`` restricted to the swap
  pattern -- machine-checked against :mod:`repro.optical.otis`.
"""

from __future__ import annotations

from ..graphs.digraph import DiGraph
from ..optical.otis import OTIS

__all__ = ["otis_network", "otis_network_size", "swap_distance_bound"]


def otis_network_size(factor: DiGraph) -> int:
    """``N = n**2`` for a factor network on ``n`` nodes."""
    return factor.num_nodes**2


def otis_network(factor: DiGraph) -> DiGraph:
    """The OTIS-G network of factor ``G``.

    Node ``(g, p)`` is processor ``p`` of group ``g``, numbered
    ``g * n + p``.  Arcs:

    * intra-group (electronic): ``(g, p) -> (g, q)`` for every factor
      arc ``p -> q``;
    * inter-group (optical, bidirectional by symmetry of the swap):
      ``(g, p) -> (p, g)`` for ``g != p``.

    Labels carry the ``(group, processor)`` pairs.

    >>> from repro.graphs import complete_digraph
    >>> net = otis_network(complete_digraph(3))
    >>> net.num_nodes, net.num_arcs
    (9, 24)
    """
    n = factor.num_nodes
    if n < 1:
        raise ValueError("factor network needs at least one node")
    labels = [(g, p) for g in range(n) for p in range(n)]
    arcs: list[tuple[int, int]] = []
    factor_arcs = factor.arc_array().tolist()
    for g in range(n):
        base = g * n
        for p, q in factor_arcs:
            arcs.append((base + p, base + q))
    for g in range(n):
        for p in range(n):
            if g != p:
                arcs.append((g * n + p, p * n + g))
    name = f"OTIS-{factor.name}" if factor.name else "OTIS-G"
    return DiGraph(n * n, arcs, labels=labels, name=name)


def swap_distance_bound(factor: DiGraph) -> int:
    """The classical diameter bound ``2*diam(G) + 1`` of OTIS-G ([24]).

    Requires the factor to be strongly connected.
    """
    from ..graphs.properties import diameter as graph_diameter

    diam = graph_diameter(factor)
    if diam < 0:
        raise ValueError("factor network must be strongly connected")
    return 2 * diam + 1


def verify_swap_arcs_match_otis(factor: DiGraph) -> bool:
    """The optical arcs of OTIS-G are the OTIS(n, n) transpose.

    For every node pair the swap arc ``(g, p) -> (p, g)`` must be the
    image of the hardware permutation applied to *ports*: assigning
    processor ``(g, p)``'s optical transmitter to OTIS input
    ``(g, n-1-p)`` makes its beam land on receiver
    ``(p, n-1-g)`` -- processor ``(p, g)``'s optical port.  (The
    complement in the port index absorbs the lens inversion; the
    network-level pattern is the pure swap of [24].)
    """
    n = factor.num_nodes
    o = OTIS(n, n)
    for g in range(n):
        for p in range(n):
            rx_group, rx_index = o.receiver_of(g, n - 1 - p)
            if (rx_group, n - 1 - rx_index) != (p, g):
                return False
    return True
