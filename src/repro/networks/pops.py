"""The Partitioned Optical Passive Star network POPS(t, g) (Sec. 2.4).

``POPS(t, g)`` (Chiarulli et al. [9]) has ``N = t*g`` processors in
``g`` groups of ``t``, and ``g**2`` OPS couplers of degree ``t``.
Coupler ``(i, j)`` takes input from every processor of group ``i`` and
broadcasts to every processor of group ``j`` -- a *single-hop*
multi-OPS network: any processor reaches any other in one optical hop,
at the price of ``g`` transmitters and ``g`` receivers per processor.

Model (Berthome, Ferreira [3], paper Fig. 5): the stack-graph
``sigma(t, K+_g)`` -- couplers are the ``g**2`` arcs of the complete
digraph with loops on the groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.complete import complete_digraph_with_loops
from ..graphs.digraph import DiGraph
from ..hypergraphs.stack_graph import StackGraph
from ..optical.ops import OPSCoupler

__all__ = ["POPSNetwork"]


@dataclass(frozen=True)
class POPSNetwork:
    """The single-hop multi-OPS network ``POPS(t, g)``.

    Parameters
    ----------
    group_size:
        ``t``: processors per group (== OPS coupler degree).
    num_groups:
        ``g``: number of groups.

    >>> net = POPSNetwork(4, 2)      # paper Fig. 4
    >>> net.num_processors, net.num_couplers
    (8, 4)
    >>> net.coupler_label_between(0, 1)
    (0, 1)
    """

    group_size: int
    num_groups: int

    def __post_init__(self) -> None:
        if self.group_size < 1 or self.num_groups < 1:
            raise ValueError(
                f"need t >= 1 and g >= 1, got t={self.group_size}, g={self.num_groups}"
            )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_processors(self) -> int:
        """``N = t * g``."""
        return self.group_size * self.num_groups

    @property
    def num_couplers(self) -> int:
        """``g**2`` couplers of degree ``t``."""
        return self.num_groups**2

    @property
    def transmitters_per_processor(self) -> int:
        """``g``: one statically-tuned transmitter per reachable coupler."""
        return self.num_groups

    @property
    def receivers_per_processor(self) -> int:
        """``g``: one receiver per coupler heard."""
        return self.num_groups

    @property
    def processor_degree(self) -> int:
        """``g`` transceiver pairs per processor (protocol surface)."""
        return self.num_groups

    @property
    def coupler_degree(self) -> int:
        """``t``: inputs (== outputs) per coupler -- the splitting factor."""
        return self.group_size

    @property
    def diameter(self) -> int:
        """Optical hop diameter: 1 (0 for the one-processor machine)."""
        return 1 if self.num_processors > 1 else 0

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def processor_id(self, group: int, index: int) -> int:
        """Flat id of processor ``index`` of ``group`` (groups contiguous)."""
        self._check_group(group)
        if not 0 <= index < self.group_size:
            raise IndexError(f"index {index} out of range [0, {self.group_size})")
        return group * self.group_size + index

    def group_of(self, processor: int) -> int:
        """Group of a flat processor id."""
        self._check_proc(processor)
        return processor // self.group_size

    def label_of(self, processor: int) -> tuple[int, int]:
        """``(group, index)`` label of a flat processor id."""
        self._check_proc(processor)
        return divmod(processor, self.group_size)

    def group_members(self, group: int) -> np.ndarray:
        """All processors of ``group``."""
        self._check_group(group)
        start = group * self.group_size
        return np.arange(start, start + self.group_size, dtype=np.int64)

    def coupler_label_between(self, src_group: int, dst_group: int) -> tuple[int, int]:
        """Label ``(i, j)`` of the coupler from group ``i`` to group ``j``.

        POPS is single-hop precisely because this exists for *every*
        ordered pair of groups, loops included.
        """
        self._check_group(src_group)
        self._check_group(dst_group)
        return (src_group, dst_group)

    def couplers(self) -> list[OPSCoupler]:
        """All ``g**2`` degree-``t`` couplers, labeled ``(i, j)``.

        Order: row-major in ``(i, j)`` -- matching the arc order of
        ``K+_g`` in CSR form, so coupler ``g*i + j`` is hyperarc
        ``g*i + j`` of :meth:`stack_graph_model`.
        """
        return [
            OPSCoupler(self.group_size, self.group_size, label=(i, j))
            for i in range(self.num_groups)
            for j in range(self.num_groups)
        ]

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def base_graph(self) -> DiGraph:
        """``K+_g``: the group-level topology."""
        return complete_digraph_with_loops(self.num_groups)

    def stack_graph_model(self) -> StackGraph:
        """``sigma(t, K+_g)`` (paper Fig. 5)."""
        return StackGraph(self.group_size, self.base_graph())

    def hypergraph_model(self) -> StackGraph:
        """Protocol alias for :meth:`stack_graph_model`."""
        return self.stack_graph_model()

    def is_single_hop(self) -> bool:
        """One optical hop joins every ordered processor pair (Sec. 1)."""
        return self.stack_graph_model().is_single_hop()

    def hop_distance(self, src: int, dst: int) -> int:
        """0 to itself, 1 everywhere else -- POPS is single-hop."""
        self._check_proc(src)
        self._check_proc(dst)
        return 0 if src == dst else 1

    # ------------------------------------------------------------------
    # One-hop routing
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> tuple[int, int]:
        """The coupler label carrying a ``src -> dst`` message."""
        return self.coupler_label_between(self.group_of(src), self.group_of(dst))

    def transmitter_port(self, src: int, dst: int) -> int:
        """Which of ``src``'s ``g`` transmitters serves a ``dst`` message.

        Port ``j`` drives the coupler toward group ``j`` (the group
        transmit block of Sec. 3.1 makes port ``j`` feed multiplexer
        ``g-1-j``; we index ports by *destination group* here, the
        design layer resolves the optics).
        """
        return self.group_of(dst)

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.num_groups})")

    def _check_proc(self, p: int) -> None:
        if not 0 <= p < self.num_processors:
            raise IndexError(f"processor {p} out of range [0, {self.num_processors})")

    def __str__(self) -> str:
        return f"POPS({self.group_size},{self.num_groups})"
