"""The paper's networks and their OTIS optical designs.

Topologies (Sec. 2):

* :class:`POPSNetwork` -- single-hop ``POPS(t, g)`` == ``sigma(t, K+_g)``
* :class:`StackKautzNetwork` -- multi-hop ``SK(s, d, k)`` ==
  ``sigma(s, KG+(d, k))``
* :class:`StackImaseItohNetwork` -- the any-size extension

Optical designs (Secs. 3-4):

* :class:`GroupTransmitBlock` / :class:`GroupReceiveBlock` -- Sec. 3.1
* :class:`OTISImaseItohRealization` -- Proposition 1;
  :func:`otis_for_kautz` -- Corollary 1; :func:`imase_itoh_view` --
  the conclusion's corollary
* :class:`POPSDesign`, :class:`StackKautzDesign`,
  :class:`StackImaseItohDesign` -- full designs with light-path tracing,
  end-to-end verification and bills of materials (Figs. 11-12)
"""

from .design import (
    BillOfMaterials,
    LightPath,
    MultiOPSOTISDesign,
    POPSDesign,
    StackImaseItohDesign,
    StackKautzDesign,
)
from .group_blocks import GroupReceiveBlock, GroupTransmitBlock
from .otis_networks import (
    otis_network,
    otis_network_size,
    swap_distance_bound,
    verify_swap_arcs_match_otis,
)
from .otis_design import (
    OTISImaseItohRealization,
    imase_itoh_view,
    otis_for_kautz,
)
from .pops import POPSNetwork
from .single_ops import SingleOPSDesign, SingleOPSNetwork, single_ops_simulator
from .stack_imase_itoh import StackImaseItohNetwork
from .stack_kautz import StackKautzNetwork

__all__ = [
    "BillOfMaterials",
    "GroupReceiveBlock",
    "GroupTransmitBlock",
    "LightPath",
    "MultiOPSOTISDesign",
    "OTISImaseItohRealization",
    "POPSDesign",
    "POPSNetwork",
    "SingleOPSDesign",
    "SingleOPSNetwork",
    "StackImaseItohDesign",
    "StackImaseItohNetwork",
    "StackKautzDesign",
    "StackKautzNetwork",
    "imase_itoh_view",
    "otis_for_kautz",
    "otis_network",
    "otis_network_size",
    "swap_distance_bound",
    "verify_swap_arcs_match_otis",
    "single_ops_simulator",
]
