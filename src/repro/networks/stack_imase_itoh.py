"""The stack-Imase-Itoh network: SK's "any size" generalization.

The paper notes (end of Sec. 2.7) that the stack-Kautz definition
"can be trivially extended to the stack-Imase-Itoh network" -- we make
that extension real.  ``SII(s, d, n) = sigma(s, II+(d, n))`` exists for
*every* group count ``n`` (Kautz graphs only exist for
``n = d**(k-1) * (d+1)``), inheriting the ``ceil(log_d n)`` diameter
bound of [15], and it drops onto exactly the same OTIS design
(Proposition 1 applies verbatim -- that is the point of stating it for
``II`` rather than for Kautz).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..graphs.digraph import DiGraph
from ..graphs.imase_itoh import (
    imase_itoh_diameter_bound,
    imase_itoh_graph,
    imase_itoh_successors,
)
from ..hypergraphs.stack_graph import StackGraph
from ..optical.ops import OPSCoupler

__all__ = ["StackImaseItohNetwork"]


@dataclass(frozen=True)
class StackImaseItohNetwork:
    """The multi-hop multi-OPS network ``SII(s, d, n)``.

    >>> net = StackImaseItohNetwork(4, 3, 10)   # no Kautz graph has 10 groups
    >>> net.num_processors, net.processor_degree
    (40, 4)
    >>> net.diameter_bound
    3
    """

    stacking_factor: int
    degree: int
    num_groups: int

    def __post_init__(self) -> None:
        if self.stacking_factor < 1:
            raise ValueError(f"need s >= 1, got {self.stacking_factor}")
        if self.degree < 2:
            raise ValueError(
                f"need d >= 2 (II diameter bound requires it), got {self.degree}"
            )
        if self.num_groups < 1:
            raise ValueError(f"need n >= 1, got {self.num_groups}")

    @property
    def num_processors(self) -> int:
        """``N = s * n``."""
        return self.stacking_factor * self.num_groups

    @property
    def processor_degree(self) -> int:
        """``d + 1``: ``d`` II couplers + 1 loop coupler."""
        return self.degree + 1

    @property
    def num_couplers(self) -> int:
        """``n * (d + 1)`` couplers of degree ``s``."""
        return self.num_groups * (self.degree + 1)

    @property
    def diameter_bound(self) -> int:
        """``ceil(log_d n)`` -- the bound of [15] on the group graph."""
        return imase_itoh_diameter_bound(self.degree, self.num_groups)

    @property
    def coupler_degree(self) -> int:
        """``s``: inputs (== outputs) per coupler -- the splitting factor."""
        return self.stacking_factor

    @property
    def diameter(self) -> int:
        """Exact optical hop diameter of ``sigma(s, II+(d, n))``.

        The group-graph diameter (loops never shorten inter-group
        paths), except that for ``s >= 2`` same-group siblings cost one
        loop-coupler hop, so the result is at least 1.  Always within
        the :attr:`diameter_bound` of [15].
        """
        base_diam = self._base_diameter_cached(self.degree, self.num_groups)
        floor = 1 if self.stacking_factor > 1 and self.num_groups >= 1 else 0
        return max(base_diam, floor) if self.num_processors > 1 else 0

    @staticmethod
    @lru_cache(maxsize=64)
    def _base_diameter_cached(d: int, n: int) -> int:
        g = StackImaseItohNetwork._base_cached(d, n).without_loops()
        if n == 1:
            return 0
        dist = np.stack([g.bfs_distances(u) for u in range(n)])
        if (dist < 0).any():
            raise ValueError(f"II({d},{n}) is not strongly connected")
        return int(dist.max())

    def processor_id(self, group: int, index: int) -> int:
        """Flat id of processor ``(x, y)``."""
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.num_groups})")
        if not 0 <= index < self.stacking_factor:
            raise IndexError(
                f"index {index} out of range [0, {self.stacking_factor})"
            )
        return group * self.stacking_factor + index

    def label_of(self, processor: int) -> tuple[int, int]:
        """``(x, y)`` label of a flat processor id."""
        if not 0 <= processor < self.num_processors:
            raise IndexError(
                f"processor {processor} out of range [0, {self.num_processors})"
            )
        return divmod(processor, self.stacking_factor)

    def group_members(self, group: int) -> np.ndarray:
        """All ``s`` processors of ``group``."""
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.num_groups})")
        start = group * self.stacking_factor
        return np.arange(start, start + self.stacking_factor, dtype=np.int64)

    def group_successors(self, group: int) -> list[int]:
        """The ``d`` II successors of ``group`` (loop excluded)."""
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.num_groups})")
        return imase_itoh_successors(group, self.degree, self.num_groups)

    def base_graph(self) -> DiGraph:
        """``II+(d, n)``: the Imase-Itoh graph with a loop at every node."""
        return self._base_cached(self.degree, self.num_groups)

    @staticmethod
    @lru_cache(maxsize=64)
    def _base_cached(d: int, n: int) -> DiGraph:
        # One loop coupler per group *in addition to* the II arcs --
        # II(d, n) can itself contain loops for general n, and the
        # dedicated loop coupler exists physically either way.
        g = imase_itoh_graph(d, n).with_extra_loops()
        g.name = f"II+({d},{n})"
        return g

    def stack_graph_model(self) -> StackGraph:
        """``sigma(s, II+(d, n))``."""
        return StackGraph(self.stacking_factor, self.base_graph())

    def hypergraph_model(self) -> StackGraph:
        """Protocol alias for :meth:`stack_graph_model`."""
        return self.stack_graph_model()

    def hop_distance(self, src: int, dst: int) -> int:
        """Optical hops from ``src`` to ``dst``: 0 self, 1 sibling,
        group-graph distance otherwise."""
        xs, _ = self.label_of(src)
        xd, _ = self.label_of(dst)
        if src == dst:
            return 0
        if xs == xd:
            return 1
        return int(self.base_graph().without_loops().bfs_distances(xs)[xd])

    def couplers(self) -> list[OPSCoupler]:
        """All couplers in base CSR arc order, labeled by their base arc."""
        s = self.stacking_factor
        return [
            OPSCoupler(s, s, label=(int(u), int(v)))
            for u, v in self.base_graph().arc_array().tolist()
        ]

    def __str__(self) -> str:
        return f"SII({self.stacking_factor},{self.degree},{self.num_groups})"
