"""The stack-Kautz network SK(s, d, k) (paper Sec. 2.7, Definition 4).

``SK(s, d, k) = sigma(s, KG+(d, k))``: the stack-graph of stacking
factor ``s`` over the Kautz graph with loops.  It has
``N = s * d**(k-1) * (d+1)`` processors, node degree ``d + 1``
(``d`` Kautz couplers + 1 loop coupler per group) and diameter ``k`` --
a *multi-hop* multi-OPS network: constant, small transceiver count per
processor, with shortest-path routing inherited from the Kautz graph.

A processor is labeled ``(x, y)``: ``x`` the Kautz group, ``y`` its
index in the group.  Group ids here are the **Imase-Itoh node indices**
(so the optical design drops straight onto one
``OTIS(d, d**(k-1)*(d+1))``, Corollary 1); the Kautz *word* of a group
is available via :meth:`StackKautzNetwork.group_word`, and word <->
index conversion uses the explicit isomorphism of
:mod:`repro.graphs.imase_itoh`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..graphs.digraph import DiGraph
from ..graphs.imase_itoh import (
    imase_itoh_graph,
    imase_itoh_index_to_kautz_word,
    imase_itoh_successors,
    kautz_word_to_imase_itoh_index,
)
from ..graphs.kautz import kautz_num_nodes
from ..hypergraphs.stack_graph import StackGraph
from ..optical.ops import OPSCoupler

__all__ = ["StackKautzNetwork"]


@dataclass(frozen=True)
class StackKautzNetwork:
    """The multi-hop multi-OPS network ``SK(s, d, k)``.

    >>> net = StackKautzNetwork(6, 3, 2)     # paper Fig. 7
    >>> net.num_processors, net.num_groups, net.processor_degree, net.diameter
    (72, 12, 4, 2)
    """

    stacking_factor: int
    degree: int
    diameter: int

    def __post_init__(self) -> None:
        if self.stacking_factor < 1:
            raise ValueError(f"need s >= 1, got {self.stacking_factor}")
        if self.degree < 1:
            raise ValueError(f"need d >= 1, got {self.degree}")
        if self.diameter < 1:
            raise ValueError(f"need k >= 1, got {self.diameter}")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """``d**(k-1) * (d+1)`` Kautz groups."""
        return kautz_num_nodes(self.degree, self.diameter)

    @property
    def num_processors(self) -> int:
        """``N = s * d**(k-1) * (d+1)``."""
        return self.stacking_factor * self.num_groups

    @property
    def processor_degree(self) -> int:
        """``d + 1``: transmitters (and receivers) per processor."""
        return self.degree + 1

    @property
    def num_couplers(self) -> int:
        """``d**(k-1) * (d+1) * (d+1)`` couplers of degree ``s``.

        ``d + 1`` per group: ``d`` Kautz arcs plus the loop.  (The paper
        states this as ``d**(k-1) * (d+1)**2``.)
        """
        return self.num_groups * (self.degree + 1)

    @property
    def coupler_degree(self) -> int:
        """``s``: inputs (== outputs) per coupler -- the splitting factor."""
        return self.stacking_factor

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def processor_id(self, group: int, index: int) -> int:
        """Flat id of processor ``(x, y)``; groups are contiguous blocks."""
        self._check_group(group)
        if not 0 <= index < self.stacking_factor:
            raise IndexError(
                f"index {index} out of range [0, {self.stacking_factor})"
            )
        return group * self.stacking_factor + index

    def label_of(self, processor: int) -> tuple[int, int]:
        """``(x, y)`` label of a flat processor id."""
        self._check_proc(processor)
        return divmod(processor, self.stacking_factor)

    def group_word(self, group: int) -> tuple[int, ...]:
        """The Kautz word labeling ``group`` (Definition 2 labels)."""
        self._check_group(group)
        return imase_itoh_index_to_kautz_word(group, self.degree, self.diameter)

    def group_of_word(self, word: tuple[int, ...]) -> int:
        """Group id carrying Kautz word ``word``."""
        if len(word) != self.diameter:
            raise ValueError(
                f"word length {len(word)} != diameter {self.diameter}"
            )
        return kautz_word_to_imase_itoh_index(word, self.degree)

    def group_members(self, group: int) -> np.ndarray:
        """All ``s`` processors of ``group``."""
        self._check_group(group)
        start = group * self.stacking_factor
        return np.arange(start, start + self.stacking_factor, dtype=np.int64)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def group_successors(self, group: int) -> list[int]:
        """The ``d`` Kautz successors of ``group`` (loop excluded)."""
        self._check_group(group)
        return imase_itoh_successors(group, self.degree, self.num_groups)

    def base_graph(self) -> DiGraph:
        """``KG+(d, k)`` on Imase-Itoh ids, nodes labeled by Kautz words."""
        return self._base_graph_cached(self.degree, self.diameter)

    @staticmethod
    @lru_cache(maxsize=64)
    def _base_graph_cached(d: int, k: int) -> DiGraph:
        # Kautz graphs never contain loops (consecutive letters differ),
        # so adding one per node is exactly the KG+ of Definition 4.
        g = imase_itoh_graph(d, kautz_num_nodes(d, k)).with_extra_loops()
        labels = [
            imase_itoh_index_to_kautz_word(u, d, k) for u in range(g.num_nodes)
        ]
        out = g.relabel(labels)
        out.name = f"KG+({d},{k})"
        return out

    def stack_graph_model(self) -> StackGraph:
        """``sigma(s, KG+(d, k))`` -- Definition 4."""
        return StackGraph(self.stacking_factor, self.base_graph())

    def hypergraph_model(self) -> StackGraph:
        """Protocol alias for :meth:`stack_graph_model`."""
        return self.stack_graph_model()

    def couplers(self) -> list[OPSCoupler]:
        """All couplers, degree ``s``, labeled ``(x, v)`` per base arc.

        Order matches the hyperarc order of :meth:`stack_graph_model`
        (base-graph CSR arc order), so coupler ``c`` is hyperarc ``c``.
        """
        s = self.stacking_factor
        return [
            OPSCoupler(s, s, label=(int(u), int(v)))
            for u, v in self.base_graph().arc_array().tolist()
        ]

    def hop_distance(self, src: int, dst: int) -> int:
        """Optical hops needed from processor ``src`` to ``dst``.

        0 for itself; group distance when the groups differ; 1 (the
        loop coupler) for a sibling in the same group.
        """
        xs, _ = self.label_of(src)
        xd, _ = self.label_of(dst)
        if src == dst:
            return 0
        if xs == xd:
            return 1
        return int(self.base_graph().bfs_distances(xs)[xd])

    def verify_definition(self) -> None:
        """Machine-check Definition 4 invariants; raises on violation.

        * node count ``s * d**(k-1) * (d+1)``;
        * every group has out-degree ``d+1`` including its loop;
        * the stack-graph hop diameter equals ``k`` (for ``s >= 2`` the
          loop makes same-group pairs distance 1 <= k; for s == 1 ditto).
        """
        base = self.base_graph()
        assert base.num_nodes == self.num_groups
        assert (base.out_degrees() == self.degree + 1).all()
        assert (base.in_degrees() == self.degree + 1).all()
        for u in range(base.num_nodes):
            assert base.has_arc(u, u), f"group {u} lacks its loop"
        model = self.stack_graph_model()
        assert model.num_nodes == self.num_processors
        assert model.num_hyperarcs == self.num_couplers
        if self.num_processors > 1:
            assert model.hop_diameter() == self.diameter

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.num_groups})")

    def _check_proc(self, p: int) -> None:
        if not 0 <= p < self.num_processors:
            raise IndexError(
                f"processor {p} out of range [0, {self.num_processors})"
            )

    def __str__(self) -> str:
        return f"SK({self.stacking_factor},{self.degree},{self.diameter})"
