"""Section 3.1 building blocks: connecting processor groups to OPS couplers.

Two free-space stages per group (paper Figs. 8 and 9):

* **Transmit block** -- the ``t`` processors of a group each own ``g``
  transmitters; one ``OTIS(t, g)`` routes transmitter ``j`` of
  processor ``i`` to input ``t-1-i`` of optical multiplexer ``g-1-j``.
  Every processor reaches every one of the group's ``g`` multiplexers
  (the input halves of its OPS couplers).
* **Receive block** -- one ``OTIS(g, t)`` routes output ``c`` of
  beam-splitter ``b`` (the output half of coupler ``b``) to receiver
  port ``g-1-b`` of processor ``t-1-c``.  Every processor hears every
  one of the group's ``g`` couplers.

These are *within-group* wiring; the *between-group* wiring is the
interconnection network of Sec. 3.2 / 4 (see
:mod:`repro.networks.design`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..optical.components import BeamSplitter, OpticalMultiplexer
from ..optical.otis import OTIS

__all__ = ["GroupTransmitBlock", "GroupReceiveBlock"]


@dataclass(frozen=True)
class GroupTransmitBlock:
    """OTIS(t, g) + ``g`` multiplexers: group transmitters -> OPS inputs.

    Parameters
    ----------
    num_processors:
        ``t``: processors in the group.
    num_couplers:
        ``g``: OPS couplers (hence multiplexers and transmitter ports
        per processor).

    >>> blk = GroupTransmitBlock(6, 4)     # paper Fig. 8
    >>> blk.multiplexer_of(0, 0)           # processor 0, port 0
    (3, 5)
    >>> blk.otis
    OTIS(num_groups=6, group_size=4)
    """

    num_processors: int
    num_couplers: int

    def __post_init__(self) -> None:
        if self.num_processors < 1 or self.num_couplers < 1:
            raise ValueError(
                f"need t >= 1 and g >= 1, got t={self.num_processors}, g={self.num_couplers}"
            )

    @property
    def otis(self) -> OTIS:
        """The free-space stage: processors are OTIS groups of ``g`` ports."""
        return OTIS(self.num_processors, self.num_couplers)

    @property
    def multiplexers(self) -> tuple[OpticalMultiplexer, ...]:
        """The ``g`` multiplexers, each combining ``t`` transmitter beams."""
        return tuple(
            OpticalMultiplexer(fan_in=self.num_processors)
            for _ in range(self.num_couplers)
        )

    def multiplexer_of(self, processor: int, port: int) -> tuple[int, int]:
        """``(multiplexer index, input slot)`` fed by a transmitter port.

        Transmitter ``(processor i, port j)`` lands, through the OTIS
        transpose, on multiplexer ``g-1-j`` at slot ``t-1-i``.
        """
        mux, slot = self.otis.receiver_of(processor, port)
        return mux, slot

    def port_for_multiplexer(self, processor: int, mux: int) -> int:
        """Which transmitter port of ``processor`` reaches ``mux``."""
        if not 0 <= mux < self.num_couplers:
            raise IndexError(f"multiplexer {mux} out of range [0, {self.num_couplers})")
        if not 0 <= processor < self.num_processors:
            raise IndexError(
                f"processor {processor} out of range [0, {self.num_processors})"
            )
        return self.num_couplers - 1 - mux

    def verify_full_reach(self) -> bool:
        """Every processor reaches every multiplexer, no slot clashes.

        The block is correct iff the map ``(i, j) -> (mux, slot)`` is a
        bijection onto ``g x t`` with each processor covering all ``g``
        multiplexers -- exactly the property Fig. 8 illustrates.
        """
        seen: set[tuple[int, int]] = set()
        for i in range(self.num_processors):
            muxes = set()
            for j in range(self.num_couplers):
                mux, slot = self.multiplexer_of(i, j)
                if not (0 <= mux < self.num_couplers and 0 <= slot < self.num_processors):
                    return False
                seen.add((mux, slot))
                muxes.add(mux)
            if muxes != set(range(self.num_couplers)):
                return False
        return len(seen) == self.num_processors * self.num_couplers


@dataclass(frozen=True)
class GroupReceiveBlock:
    """OTIS(g, t) + ``g`` beam-splitters: OPS outputs -> group receivers.

    >>> blk = GroupReceiveBlock(3, 5)      # paper Fig. 9
    >>> blk.receiver_of(0, 0)              # splitter 0, output 0
    (4, 2)
    """

    num_couplers: int
    num_processors: int

    def __post_init__(self) -> None:
        if self.num_processors < 1 or self.num_couplers < 1:
            raise ValueError(
                f"need g >= 1 and t >= 1, got g={self.num_couplers}, t={self.num_processors}"
            )

    @property
    def otis(self) -> OTIS:
        """The free-space stage: splitters are OTIS groups of ``t`` beams."""
        return OTIS(self.num_couplers, self.num_processors)

    @property
    def splitters(self) -> tuple[BeamSplitter, ...]:
        """The ``g`` beam-splitters, each fanning out to ``t`` receivers."""
        return tuple(
            BeamSplitter(fan_out=self.num_processors)
            for _ in range(self.num_couplers)
        )

    def receiver_of(self, splitter: int, output: int) -> tuple[int, int]:
        """``(processor, receiver port)`` hearing a splitter output.

        Splitter ``b`` output ``c`` lands on processor ``t-1-c`` at
        receiver port ``g-1-b``.
        """
        proc, port = self.otis.receiver_of(splitter, output)
        return proc, port

    def port_for_splitter(self, processor: int, splitter: int) -> int:
        """Receiver port of ``processor`` listening to ``splitter``."""
        if not 0 <= splitter < self.num_couplers:
            raise IndexError(f"splitter {splitter} out of range [0, {self.num_couplers})")
        if not 0 <= processor < self.num_processors:
            raise IndexError(
                f"processor {processor} out of range [0, {self.num_processors})"
            )
        return self.num_couplers - 1 - splitter

    def verify_full_reach(self) -> bool:
        """Every splitter reaches every processor exactly once."""
        seen: set[tuple[int, int]] = set()
        for b in range(self.num_couplers):
            procs = set()
            for c in range(self.num_processors):
                proc, port = self.receiver_of(b, c)
                if not (0 <= proc < self.num_processors and 0 <= port < self.num_couplers):
                    return False
                seen.add((proc, port))
                procs.add(proc)
            if procs != set(range(self.num_processors)):
                return False
        return len(seen) == self.num_processors * self.num_couplers
