"""Proposition 1: OTIS(d, n) perfectly realizes II(d, n) (paper Sec. 3.2).

The paper's key result.  Associate with each node ``u`` of the
Imase-Itoh graph ``II(d, n)``:

* the ``d`` OTIS *inputs* with flat index ``d*u + (a-1)``, ``a = 1..d``
  -- i.e. input pair ``(i, j)`` is associated to node
  ``u = (n*i + j) // d``;
* the ``d`` OTIS *outputs* ``(v, b)`` of receiver group ``v`` -- i.e.
  output pair ``(gr, idx)`` is associated to node ``v = gr`` (the paper
  states this as ``v = n - 1 - j`` for output ``s = (n-1-j, d-1-i)``).

Then the OTIS transpose map sends node ``u``'s ``a``-th input to an
output of node ``v == (-d*u - a) mod n``: exactly the out-neighborhood
of ``u`` in ``II(d, n)``.  :class:`OTISImaseItohRealization` implements
the association, re-derives the arc set from pure OTIS optics, and
:meth:`OTISImaseItohRealization.verify` machine-checks Proposition 1.

Corollary 1 follows: ``KG(d, k)`` is realizable with
``OTIS(d, d**(k-1) * (d+1))`` (:func:`otis_for_kautz`), and the
conclusion's corollary -- *the OTIS architecture can be viewed as an
Imase-Itoh graph* -- is :func:`imase_itoh_view`.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..graphs.digraph import DiGraph
from ..graphs.imase_itoh import imase_itoh_graph, imase_itoh_successors
from ..graphs.kautz import kautz_num_nodes
from ..optical.otis import OTIS

__all__ = [
    "OTISImaseItohRealization",
    "otis_for_kautz",
    "imase_itoh_view",
]


@dataclass(frozen=True)
class OTISImaseItohRealization:
    """The input/output-to-node association of Proposition 1.

    Parameters
    ----------
    degree:
        ``d``: graph degree == OTIS group count.
    num_network_nodes:
        ``n``: node count == OTIS group size.

    >>> r = OTISImaseItohRealization(3, 12)      # paper Fig. 10
    >>> r.node_of_input(0, 1)                    # input (0, 1)
    0
    >>> r.inputs_of_node(0)
    [(0, 0), (0, 1), (0, 2)]
    >>> r.verify()
    True
    """

    degree: int
    num_network_nodes: int

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        if self.num_network_nodes < 1:
            raise ValueError(
                f"num_network_nodes must be >= 1, got {self.num_network_nodes}"
            )

    @property
    def otis(self) -> OTIS:
        """The underlying optical stage ``OTIS(d, n)``."""
        return OTIS(self.degree, self.num_network_nodes)

    # ------------------------------------------------------------------
    # Input side: node u <- inputs d*u .. d*u + d-1 (flat)
    # ------------------------------------------------------------------
    def node_of_input(self, group: int, index: int) -> int:
        """Node associated with OTIS input ``(i, j)``: ``(n*i + j) // d``."""
        self.otis._check_tx(group, index)  # noqa: SLF001 - same package
        return (self.num_network_nodes * group + index) // self.degree

    def inputs_of_node(self, u: int) -> list[tuple[int, int]]:
        """The ``d`` OTIS inputs of node ``u``, in offset order ``a = 1..d``.

        Input ``a`` has flat index ``d*u + a - 1``, i.e. pair
        ``((d*u + a - 1) // n, (d*u + a - 1) % n)`` -- the paper's
        ``e_{d*u + a - 1}``.
        """
        self._check_node(u)
        d, n = self.degree, self.num_network_nodes
        return [divmod(d * u + a - 1, n) for a in range(1, d + 1)]

    # ------------------------------------------------------------------
    # Output side: node v <- outputs (v, 0) .. (v, d-1)
    # ------------------------------------------------------------------
    def node_of_output(self, group: int, index: int) -> int:
        """Node associated with OTIS output ``(gr, idx)``: the group ``gr``.

        Matches the paper's statement: output ``s = (n-1-j, d-1-i)`` is
        associated to node ``v = n-1-j``.
        """
        self.otis._check_rx(group, index)  # noqa: SLF001
        return group

    def outputs_of_node(self, v: int) -> list[tuple[int, int]]:
        """The ``d`` OTIS outputs of node ``v``: ``(v, 0) .. (v, d-1)``."""
        self._check_node(v)
        return [(v, b) for b in range(self.degree)]

    # ------------------------------------------------------------------
    # The realized graph
    # ------------------------------------------------------------------
    def realized_successors(self, u: int) -> list[int]:
        """Out-neighbors of ``u`` as *realized by the optics alone*.

        For each input of ``u``, follow the OTIS transpose map and read
        off the node owning the receiving output.  Proposition 1 says
        this equals ``imase_itoh_successors(u, d, n)``; we recompute it
        from the optics so the comparison is meaningful.
        """
        self._check_node(u)
        out = []
        for (i, j) in self.inputs_of_node(u):
            rx_group, _rx_index = self.otis.receiver_of(i, j)
            out.append(self.node_of_output(rx_group, 0))
        return out

    def realized_graph(self) -> DiGraph:
        """The digraph realized by the optics under the association."""
        n = self.num_network_nodes
        arcs = [(u, v) for u in range(n) for v in self.realized_successors(u)]
        return DiGraph(n, arcs, name=f"OTIS({self.degree},{n})-realized")

    def verify(self) -> bool:
        """Machine-check of Proposition 1.

        True iff for every node ``u`` the optics deliver ``u``'s inputs
        to exactly the Imase-Itoh successors ``(-d*u - a) mod n``,
        *in matching offset order* (input ``a`` lands on the node of
        offset ``a``), and the realized arc multiset equals
        ``II(d, n)``'s.
        """
        d, n = self.degree, self.num_network_nodes
        for u in range(n):
            if self.realized_successors(u) != imase_itoh_successors(u, d, n):
                return False
        return self.realized_graph() == imase_itoh_graph(d, n)

    def input_port_of_arc(self, u: int, a: int) -> int:
        """Flat OTIS input carrying the arc of offset ``a`` out of ``u``."""
        if not 1 <= a <= self.degree:
            raise ValueError(f"offset a must be in 1..{self.degree}, got {a}")
        self._check_node(u)
        return self.degree * u + a - 1

    def output_port_of_arc(self, u: int, a: int) -> int:
        """Flat OTIS output where the arc of offset ``a`` out of ``u`` lands.

        The landing output group is the II successor
        ``v = (-d*u - a) mod n``; the index within the group follows
        from the transpose map.
        """
        p = self.input_port_of_arc(u, a)
        i, j = divmod(p, self.num_network_nodes)
        gr, idx = self.otis.receiver_of(i, j)
        return gr * self.degree + idx

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_network_nodes:
            raise IndexError(
                f"node {u} out of range [0, {self.num_network_nodes})"
            )


def otis_for_kautz(d: int, k: int) -> OTISImaseItohRealization:
    """Corollary 1: the OTIS stage realizing ``KG(d, k)``.

    ``KG(d, k) == II(d, d**(k-1) * (d+1))``, so one
    ``OTIS(d, d**(k-1)*(d+1))`` wires a whole Kautz network.

    >>> otis_for_kautz(3, 2).otis
    OTIS(num_groups=3, group_size=12)
    """
    return OTISImaseItohRealization(d, kautz_num_nodes(d, k))


def imase_itoh_view(otis: OTIS) -> DiGraph:
    """The conclusion's corollary: an OTIS *is* an Imase-Itoh graph.

    Group the ``G*T`` inputs of ``OTIS(G, T)`` into ``T`` consecutive
    blocks of ``G`` and the outputs by their receiver group; the
    resulting point-to-point pattern is ``II(G, T)``.  So properties of
    OTIS-based networks can be read off ``II`` theory (diameter,
    routing, connectivity).
    """
    return OTISImaseItohRealization(otis.num_groups, otis.group_size).realized_graph()
