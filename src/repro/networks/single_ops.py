"""Single-OPS lightwave networks: the baseline multi-OPS competes with.

The paper's introduction splits OPS networks into single-OPS (all
processors share one passive star: [8, 21, 22]) and multi-OPS, and
argues "multi-OPS networks seem more viable and cost-effective under
current optical technology" [9, 11].  To make that claim measurable we
implement the single-OPS side:

* :class:`SingleOPSNetwork` -- ``n`` processors on one OPS(n, n).
  With a single wavelength the coupler carries **one message per
  slot** network-wide; multi-hop *virtual* topologies (de Bruijn
  shufflenets of [22]) only change who may talk to whom per hop, not
  that global serialization.
* the splitting loss is ``10*log10(n)`` -- the whole machine's power
  budget rides one 1/n split, which is the technological ceiling the
  paper alludes to (POPS/stack-Kautz split only 1/t or 1/s).

The EXT-6 benchmark runs identical traffic through a single-OPS
machine, a POPS and a stack-Kautz of the same size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs.digraph import DiGraph
from ..hypergraphs.hypergraph import DirectedHypergraph, Hyperarc
from ..optical.components import splitting_loss_db
from ..optical.ops import OPSCoupler

__all__ = ["SingleOPSNetwork", "SingleOPSDesign"]


@dataclass(frozen=True)
class SingleOPSNetwork:
    """All ``num_processors`` processors on one OPS coupler.

    Parameters
    ----------
    num_processors:
        ``n``: machine size == coupler degree.
    virtual_topology:
        Optional digraph over the processors restricting who forwards
        to whom (a single-hop machine when ``None``).  With a virtual
        topology each processor needs only one statically tuned
        transmitter/receiver *pair tuning*; physically everything still
        crosses the one star.

    >>> net = SingleOPSNetwork(8)
    >>> net.coupler().degree
    8
    >>> round(net.splitting_loss_db(), 2)
    9.03
    """

    num_processors: int
    virtual_topology: DiGraph | None = field(default=None)

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError(f"need n >= 1, got {self.num_processors}")
        if (
            self.virtual_topology is not None
            and self.virtual_topology.num_nodes != self.num_processors
        ):
            raise ValueError(
                "virtual topology must have one node per processor"
            )

    # ------------------------------------------------------------------
    @property
    def num_couplers(self) -> int:
        """Always 1 -- that is the point."""
        return 1

    @property
    def num_groups(self) -> int:
        """One group: the whole machine shares the star."""
        return 1

    @property
    def processor_degree(self) -> int:
        """One statically tuned transceiver pair per processor."""
        return 1

    @property
    def coupler_degree(self) -> int:
        """``n``: everyone splits the one star."""
        return self.num_processors

    @property
    def diameter(self) -> int:
        """1 when single-hop; the virtual-topology diameter otherwise."""
        if self.num_processors == 1:
            return 0
        if self.virtual_topology is None:
            return 1
        from ..graphs.properties import diameter as graph_diameter

        return graph_diameter(self.virtual_topology)

    def label_of(self, processor: int) -> tuple[int, int]:
        """``(0, processor)``: one group holds everyone."""
        if not 0 <= processor < self.num_processors:
            raise IndexError(f"processor {processor} out of range")
        return (0, processor)

    def coupler(self) -> OPSCoupler:
        """The one degree-``n`` star."""
        return OPSCoupler(self.num_processors, self.num_processors, label="star")

    def splitting_loss_db(self) -> float:
        """``10*log10(n)``: every message pays the full machine split."""
        return splitting_loss_db(self.num_processors)

    def hypergraph(self) -> DirectedHypergraph:
        """One hyperarc covering everyone."""
        everyone = tuple(range(self.num_processors))
        return DirectedHypergraph(
            self.num_processors,
            [Hyperarc(everyone, everyone, label="star")],
            name=f"SingleOPS({self.num_processors})",
        )

    def hypergraph_model(self) -> DirectedHypergraph:
        """Protocol alias for :meth:`hypergraph`."""
        return self.hypergraph()

    def is_single_hop(self) -> bool:
        """Single-hop iff no virtual topology constrains forwarding."""
        return self.virtual_topology is None

    def hop_distance(self, src: int, dst: int) -> int:
        """Hops under the virtual topology (1 everywhere when single-hop)."""
        if not 0 <= src < self.num_processors:
            raise IndexError(f"processor {src} out of range")
        if not 0 <= dst < self.num_processors:
            raise IndexError(f"processor {dst} out of range")
        if src == dst:
            return 0
        if self.virtual_topology is None:
            return 1
        return int(self.virtual_topology.bfs_distances(src)[dst])

    def slots_lower_bound(self, num_messages: int) -> int:
        """Serialization bound: one message per slot, network-wide.

        For multi-hop virtual topologies every *hop* costs a slot, so
        the bound is actually the total hop count; this method returns
        the single-hop floor.
        """
        return num_messages

    def __str__(self) -> str:
        tag = (
            ""
            if self.virtual_topology is None
            else f",virtual={self.virtual_topology.name or 'G'}"
        )
        return f"SingleOPS({self.num_processors}{tag})"


class SingleOPSDesign:
    """The (trivial) optical design of a single-OPS machine.

    One multiplexer/beam-splitter pair forms the star; there is no OTIS
    stage at all.  Exists so the facade can drive ``sops`` through the
    same build -> route -> simulate -> design pipeline as the multi-OPS
    families, and so the comparison tables can price the baseline.

    >>> d = SingleOPSDesign(8)
    >>> d.verify()
    True
    >>> d.bill_of_materials().couplers
    1
    """

    def __init__(self, num_processors: int) -> None:
        self.network = SingleOPSNetwork(num_processors)
        self.num_processors = num_processors
        self.name = f"SingleOPS({num_processors})"

    def verify(self) -> bool:
        """The one hyperarc covers every ordered processor pair."""
        model = self.network.hypergraph()
        return model.num_hyperarcs == 1 and model.is_single_hop()

    def bill_of_materials(self):
        """Component counts: one star, ``n`` transceiver pairs, no OTIS."""
        from .design import BillOfMaterials

        n = self.num_processors
        return BillOfMaterials(
            otis_units={},
            multiplexers=1,
            beam_splitters=1,
            loop_fibers=0,
            transmitters=n,
            receivers=n,
            couplers=1,
        )

    def worst_case_power_budget(
        self, transmitter=None, receiver=None, fiber_length_m: float = 1.0
    ):
        """Loss audit: the whole machine rides one ``1/n`` split."""
        from ..optical.components import (
            BeamSplitter,
            OpticalFiber,
            OpticalMultiplexer,
            Receiver,
            Transmitter,
        )
        from ..optical.power import PowerBudget

        tx = transmitter if transmitter is not None else Transmitter()
        rx = receiver if receiver is not None else Receiver()
        path = (
            OpticalMultiplexer(fan_in=self.num_processors),
            OpticalFiber(length_m=fiber_length_m),
            BeamSplitter(fan_out=self.num_processors),
        )
        return PowerBudget(tx, path, rx)

    def __repr__(self) -> str:
        return f"<SingleOPSDesign {self.name}>"


def single_ops_simulator(net: SingleOPSNetwork, policy=None):
    """Slotted simulator over a single-OPS machine.

    Single-hop mode: every message takes the star once.  Virtual-
    topology mode: messages hop along shortest virtual paths, every
    hop re-crossing the star (still one transmission per slot total).
    """
    from ..routing.tables import build_routing_table
    from ..simulation.engine import Message, SlottedSimulator

    model = net.hypergraph()
    if net.virtual_topology is None:

        def next_coupler(holder: int, msg: Message) -> int:
            return 0

        def relay(coupler: int, msg: Message) -> int:
            return msg.dst

        return SlottedSimulator(model, next_coupler, relay_of=relay, policy=policy)

    table = build_routing_table(net.virtual_topology)

    def next_coupler(holder: int, msg: Message) -> int:
        return 0

    def relay(coupler: int, msg: Message) -> int:
        nxt = table.next_hop(msg.current, msg.dst)
        if nxt < 0:
            raise RuntimeError(
                f"virtual topology cannot route {msg.current} -> {msg.dst}"
            )
        return nxt

    return SlottedSimulator(model, next_coupler, relay_of=relay, policy=policy)
