"""Full optical designs of Section 4: POPS and stack-Kautz with OTIS.

This module assembles the building blocks into complete, *auditable*
machines.  A design knows every optical element between any transmitter
and any receiver, can trace the light path of every (processor, port),
and proves that the traced paths realize exactly the hyperarcs of the
network's stack-graph model -- the end-to-end statement behind the
paper's Figs. 11 and 12.

Architecture (same skeleton for POPS, stack-Kautz and stack-Imase-Itoh,
because all three group graphs are Imase-Itoh graphs -- ``K+_g ==
II(g, g)``, ``KG(d, k) == II(d, d**(k-1)*(d+1))``):

* per group ``u``: one transmit block ``OTIS(s, D)`` feeding ``D``
  multiplexers, and one receive block ``OTIS(D, s)`` fed by ``D``
  beam-splitters  (``s`` = group size, ``D`` = processor degree);
* one interconnection stage ``OTIS(d, n)`` carrying multiplexer ``m``
  of group ``u`` (``m < d``) to beam-splitter ``b`` of group
  ``v = (-d*u - (m+1)) mod n`` -- Proposition 1;
* when the group graph carries loops *outside* the interconnect
  (stack-Kautz: ``KG+``), multiplexer ``d`` of each group loops back to
  beam-splitter ``d`` of the same group over fiber.  POPS routes loops
  through the interconnect, because ``II(g, g) = K+_g`` already
  contains them.

Port conventions (fixed by the OTIS transpose, not chosen):
transmitter port ``j`` of any processor feeds multiplexer ``D-1-j`` of
its group; beam-splitter ``b`` reaches every processor of its group on
receiver port ``D-1-b``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.digraph import DiGraph
from ..graphs.imase_itoh import imase_itoh_graph
from ..graphs.kautz import kautz_num_nodes
from ..hypergraphs.stack_graph import StackGraph
from ..optical.components import (
    BeamSplitter,
    LensPair,
    OpticalFiber,
    OpticalMultiplexer,
    Receiver,
    Transmitter,
)
from ..optical.otis import OTIS
from ..optical.power import PowerBudget
from .group_blocks import GroupReceiveBlock, GroupTransmitBlock
from .otis_design import OTISImaseItohRealization

__all__ = [
    "BillOfMaterials",
    "LightPath",
    "MultiOPSOTISDesign",
    "POPSDesign",
    "StackKautzDesign",
    "StackImaseItohDesign",
]


@dataclass(frozen=True)
class BillOfMaterials:
    """Hardware inventory of a design (the content of Figs. 11/12).

    ``otis_units`` maps ``(G, T)`` to the number of ``OTIS(G, T)``
    stages.  All other fields are plain counts.
    """

    otis_units: dict[tuple[int, int], int]
    multiplexers: int
    beam_splitters: int
    loop_fibers: int
    transmitters: int
    receivers: int
    couplers: int

    @property
    def total_otis_stages(self) -> int:
        """Total number of OTIS devices."""
        return sum(self.otis_units.values())

    @property
    def total_lenses(self) -> int:
        """Total lenses over all OTIS stages (``G + T`` each)."""
        return sum((g + t) * q for (g, t), q in self.otis_units.items())

    def summary(self) -> str:
        """Human-readable inventory, one line per component type."""
        lines = []
        for (g, t), q in sorted(self.otis_units.items()):
            lines.append(f"{q:>6} x OTIS({g},{t})")
        lines.append(f"{self.multiplexers:>6} x optical multiplexer")
        lines.append(f"{self.beam_splitters:>6} x beam-splitter")
        if self.loop_fibers:
            lines.append(f"{self.loop_fibers:>6} x loop fiber")
        lines.append(f"{self.transmitters:>6} x transmitter")
        lines.append(f"{self.receivers:>6} x receiver")
        lines.append(f"{self.couplers:>6} x OPS coupler (mux+splitter pair)")
        lines.append(f"{self.total_lenses:>6}   lenses total")
        return "\n".join(lines)


@dataclass(frozen=True)
class LightPath:
    """One traced beam: transmitter port -> (broadcast) receiver ports.

    ``stages`` names each optical element crossed, in order.  The path
    ends at a beam-splitter whose ``s`` outputs all carry the signal;
    ``receivers`` lists every ``(group, index, port)`` illuminated.
    """

    src_group: int
    src_index: int
    src_port: int
    via_loop_fiber: bool
    coupler: tuple[int, int]  # (group, mux index) identifying the coupler
    dst_group: int
    dst_splitter: int
    receivers: tuple[tuple[int, int, int], ...]
    stages: tuple[str, ...]


class MultiOPSOTISDesign:
    """OTIS realization of ``sigma(s, II+(d, n))``-style networks.

    Parameters
    ----------
    stacking_factor:
        ``s``: processors per group == OPS degree.
    ic_degree:
        ``d``: degree of the Imase-Itoh interconnect.
    num_groups:
        ``n``: number of groups.
    loop_via_fiber:
        ``True`` adds one loop coupler per group wired over fiber
        (stack-Kautz / stack-II); ``False`` means the interconnect
        already carries every needed arc (POPS, where ``II(g, g)``
        contains the loops).
    """

    def __init__(
        self,
        stacking_factor: int,
        ic_degree: int,
        num_groups: int,
        loop_via_fiber: bool,
        name: str = "",
    ) -> None:
        if stacking_factor < 1:
            raise ValueError(f"need s >= 1, got {stacking_factor}")
        self.stacking_factor = stacking_factor
        self.ic_degree = ic_degree
        self.num_groups = num_groups
        self.loop_via_fiber = loop_via_fiber
        self.name = name or f"design(s={stacking_factor},d={ic_degree},n={num_groups})"
        self.interconnect = OTISImaseItohRealization(ic_degree, num_groups)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def processor_degree(self) -> int:
        """``D``: ports per processor (``d`` + 1 when loops ride fiber)."""
        return self.ic_degree + (1 if self.loop_via_fiber else 0)

    @property
    def num_processors(self) -> int:
        """``s * n``."""
        return self.stacking_factor * self.num_groups

    def base_graph(self) -> DiGraph:
        """The group graph the design must realize.

        With fiber loops, one loop arc is added at *every* node on top
        of the interconnect arcs -- even where ``II(d, n)`` happens to
        contain a loop already (possible for general ``n``; never for
        Kautz sizes), since the fiber coupler exists physically either
        way.
        """
        g = imase_itoh_graph(self.ic_degree, self.num_groups)
        if self.loop_via_fiber:
            g = g.with_extra_loops()
        return g

    def stack_graph_model(self) -> StackGraph:
        """The target hypergraph ``sigma(s, base)``."""
        return StackGraph(self.stacking_factor, self.base_graph())

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def transmit_block(self, group: int) -> GroupTransmitBlock:
        """The ``OTIS(s, D)`` transmit stage of ``group``."""
        self._check_group(group)
        return GroupTransmitBlock(self.stacking_factor, self.processor_degree)

    def receive_block(self, group: int) -> GroupReceiveBlock:
        """The ``OTIS(D, s)`` receive stage of ``group``."""
        self._check_group(group)
        return GroupReceiveBlock(self.processor_degree, self.stacking_factor)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def mux_of_port(self, group: int, index: int, port: int) -> tuple[int, int]:
        """Multiplexer ``(group, m)`` fed by transmitter ``port`` of a node."""
        blk = self.transmit_block(group)
        m, _slot = blk.multiplexer_of(index, port)
        return (group, m)

    def port_of_mux(self, m: int) -> int:
        """Transmitter port (same for every processor) feeding mux ``m``."""
        if not 0 <= m < self.processor_degree:
            raise IndexError(f"mux {m} out of range [0, {self.processor_degree})")
        return self.processor_degree - 1 - m

    def coupler_destination(self, group: int, m: int) -> tuple[int, int, bool]:
        """Where multiplexer ``(group, m)`` delivers: ``(v, splitter, via_fiber)``.

        ``m < d``: through the interconnect OTIS, to group
        ``(-d*group - (m+1)) mod n`` at the splitter the transpose
        dictates.  ``m == d`` (loop designs only): over fiber, back to
        this group's splitter ``d``.
        """
        self._check_group(group)
        d = self.ic_degree
        if m == d and self.loop_via_fiber:
            return (group, d, True)
        if not 0 <= m < d:
            raise IndexError(f"mux {m} out of range for this design")
        q = self.interconnect.output_port_of_arc(group, m + 1)
        v, b = divmod(q, d)
        return (v, b, False)

    def receiver_port_of_splitter(self, b: int) -> int:
        """Receiver port (same for every processor) fed by splitter ``b``."""
        if not 0 <= b < self.processor_degree:
            raise IndexError(f"splitter {b} out of range [0, {self.processor_degree})")
        return self.processor_degree - 1 - b

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def trace(self, group: int, index: int, port: int) -> LightPath:
        """Full light path of transmitter ``port`` on processor ``(group, index)``."""
        self._check_group(group)
        if not 0 <= index < self.stacking_factor:
            raise IndexError(f"index {index} out of range [0, {self.stacking_factor})")
        u, m = self.mux_of_port(group, index, port)
        v, b, via_fiber = self.coupler_destination(u, m)
        rx_port = self.receiver_port_of_splitter(b)
        receivers = tuple(
            (v, y, rx_port) for y in range(self.stacking_factor)
        )
        mid = (
            f"loop-fiber(group {u})"
            if via_fiber
            else f"OTIS({self.ic_degree},{self.num_groups})"
        )
        stages = (
            f"tx({group},{index})#{port}",
            f"OTIS({self.stacking_factor},{self.processor_degree})@group{group}",
            f"mux({u},{m})",
            mid,
            f"splitter({v},{b})",
            f"OTIS({self.processor_degree},{self.stacking_factor})@group{v}",
            f"rx(group {v} x{self.stacking_factor})#{rx_port}",
        )
        return LightPath(
            src_group=group,
            src_index=index,
            src_port=port,
            via_loop_fiber=via_fiber,
            coupler=(u, m),
            dst_group=v,
            dst_splitter=b,
            receivers=receivers,
            stages=stages,
        )

    def realized_hyperarcs(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Per coupler ``(u, m)``, the (sources, targets) in flat node ids.

        Flat id of processor ``(x, y)`` is ``x*s + y``, matching
        :class:`~repro.hypergraphs.stack_graph.StackGraph` numbering.
        Couplers are ordered by ``(u, m)``.
        """
        s = self.stacking_factor
        out = []
        for u in range(self.num_groups):
            for m in range(self.processor_degree):
                port = self.port_of_mux(m)
                sources = tuple(u * s + y for y in range(s))
                # Trace one representative; all group members land alike.
                path = self.trace(u, 0, port)
                assert path.coupler == (u, m)
                targets = tuple(path.dst_group * s + y for y, _ in enumerate(range(s)))
                out.append((sources, targets))
        return out

    def verify(self) -> bool:
        """End-to-end check: the optics realize exactly the stack-graph.

        1. every group block has full reach (Sec. 3.1 property);
        2. the multiset of realized couplers equals the hyperarc
           multiset of ``sigma(s, base)``;
        3. within a coupler, the ``s`` transmitter beams occupy the
           ``s`` distinct multiplexer slots (no two beams collide on a
           mux input), and the splitter illuminates all ``s`` group
           members on a common port.
        """
        blk_t = self.transmit_block(0)
        blk_r = self.receive_block(0)
        if not blk_t.verify_full_reach() or not blk_r.verify_full_reach():
            return False

        model = self.stack_graph_model()
        want = sorted(
            (ha.sources, ha.targets) for ha in model.hyperarcs
        )
        got = sorted(self.realized_hyperarcs())
        if want != got:
            return False

        s = self.stacking_factor
        for u in range(min(self.num_groups, 4)):
            for m in range(self.processor_degree):
                port = self.port_of_mux(m)
                slots = set()
                for y in range(s):
                    mux, slot = self.transmit_block(u).multiplexer_of(y, port)
                    if mux != m:
                        return False
                    slots.add(slot)
                if slots != set(range(s)):
                    return False
        return True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def bill_of_materials(self) -> BillOfMaterials:
        """Component counts (compare Fig. 11 / Fig. 12)."""
        s, d, n = self.stacking_factor, self.ic_degree, self.num_groups
        D = self.processor_degree
        otis: dict[tuple[int, int], int] = {}
        otis[(s, D)] = otis.get((s, D), 0) + n          # transmit blocks
        otis[(D, s)] = otis.get((D, s), 0) + n          # receive blocks
        otis[(d, n)] = otis.get((d, n), 0) + 1          # interconnect
        return BillOfMaterials(
            otis_units=otis,
            multiplexers=n * D,
            beam_splitters=n * D,
            loop_fibers=n if self.loop_via_fiber else 0,
            transmitters=self.num_processors * D,
            receivers=self.num_processors * D,
            couplers=n * D,
        )

    def worst_case_power_budget(
        self,
        transmitter: Transmitter | None = None,
        receiver: Receiver | None = None,
        fiber_length_m: float = 1.0,
    ) -> PowerBudget:
        """Loss audit of the longest chain (interconnect path).

        transmitter -> transmit OTIS -> multiplexer -> interconnect
        OTIS -> beam-splitter (1/s) -> receive OTIS -> receiver.
        """
        tx = transmitter if transmitter is not None else Transmitter()
        rx = receiver if receiver is not None else Receiver()
        path = (
            LensPair(name=f"otis({self.stacking_factor},{self.processor_degree})"),
            OpticalMultiplexer(fan_in=self.stacking_factor),
            LensPair(name=f"otis({self.ic_degree},{self.num_groups})"),
            BeamSplitter(fan_out=self.stacking_factor),
            LensPair(name=f"otis({self.processor_degree},{self.stacking_factor})"),
        )
        _ = fiber_length_m  # loop paths swap the middle lens pair for fiber
        return PowerBudget(tx, path, rx)

    def loop_power_budget(
        self,
        transmitter: Transmitter | None = None,
        receiver: Receiver | None = None,
        fiber_length_m: float = 1.0,
    ) -> PowerBudget:
        """Loss audit of a loop-coupler chain (fiber instead of OTIS)."""
        if not self.loop_via_fiber:
            raise ValueError("this design has no fiber loops")
        tx = transmitter if transmitter is not None else Transmitter()
        rx = receiver if receiver is not None else Receiver()
        path = (
            LensPair(name=f"otis({self.stacking_factor},{self.processor_degree})"),
            OpticalMultiplexer(fan_in=self.stacking_factor),
            OpticalFiber(length_m=fiber_length_m),
            BeamSplitter(fan_out=self.stacking_factor),
            LensPair(name=f"otis({self.processor_degree},{self.stacking_factor})"),
        )
        return PowerBudget(tx, path, rx)

    def render_ascii(self, max_groups: int = 4) -> str:
        """Text schematic in the spirit of paper Figs. 11-12.

        Draws, for up to ``max_groups`` groups, the transmit stage, the
        multiplexers with their destinations through the interconnect
        (or loop fiber), and the receive stage.
        """
        s, d, n = self.stacking_factor, self.ic_degree, self.num_groups
        D = self.processor_degree
        lines = [
            f"{self.name}: {n} groups x {s} processors, degree {D}",
            f"interconnect: OTIS({d},{n})"
            + (f" + {n} loop fibers" if self.loop_via_fiber else ""),
            "",
        ]
        shown = min(n, max_groups)
        for u in range(shown):
            lines.append(
                f"group {u}:  [{s} tx x {D} ports] --OTIS({s},{D})--> muxes:"
            )
            for m in range(D):
                v, b, fiber = self.coupler_destination(u, m)
                via = "loop fiber" if fiber else f"OTIS({d},{n})"
                lines.append(
                    f"    mux({u},{m}) <- port {self.port_of_mux(m)}"
                    f"  --{via}-->  splitter({v},{b})"
                    f"  --OTIS({D},{s})--> group {v} rx port {self.receiver_port_of_splitter(b)}"
                )
        if shown < n:
            lines.append(f"    ... ({n - shown} more groups, same pattern)")
        return "\n".join(lines)

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.num_groups})")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class POPSDesign(MultiOPSOTISDesign):
    """Optical design of ``POPS(t, g)`` (paper Sec. 4.1, Fig. 11).

    Uses ``g`` transmit blocks ``OTIS(t, g)``, ``g`` receive blocks
    ``OTIS(g, t)`` and one interconnect ``OTIS(g, g)`` -- valid because
    ``II(g, g) == K+_g`` (every node's successor set is all of ``Z_g``),
    so Proposition 1 wires the complete group graph, loops included.

    >>> d = POPSDesign(4, 2)
    >>> d.bill_of_materials().otis_units
    {(4, 2): 2, (2, 4): 2, (2, 2): 1}
    >>> d.verify()
    True
    """

    def __init__(self, group_size: int, num_groups: int) -> None:
        super().__init__(
            stacking_factor=group_size,
            ic_degree=num_groups,
            num_groups=num_groups,
            loop_via_fiber=False,
            name=f"POPS({group_size},{num_groups})",
        )
        self.group_size = group_size

    def coupler_for_label(self, i: int, j: int) -> tuple[int, int]:
        """The ``(group, mux)`` pair implementing POPS coupler ``(i, j)``.

        Coupler ``(i, j)`` is the arc ``i -> j`` of ``K+_g``; as an
        ``II(g, g)`` arc it leaves ``i`` with offset ``a = (-j) mod g``
        (with 0 meaning ``g``), i.e. multiplexer ``m = a - 1``.
        """
        self._check_group(i)
        self._check_group(j)
        a = (-j) % self.num_groups
        if a == 0:
            a = self.num_groups
        return (i, a - 1)


class StackKautzDesign(MultiOPSOTISDesign):
    """Optical design of ``SK(s, d, k)`` (paper Sec. 4.2, Fig. 12).

    ``d**(k-1) * (d+1)`` transmit blocks ``OTIS(s, d+1)``, as many
    receive blocks ``OTIS(d+1, s)``, one interconnect
    ``OTIS(d, d**(k-1)*(d+1))`` (Corollary 1), and one fiber loop per
    group.

    >>> d = StackKautzDesign(6, 3, 2)
    >>> d.bill_of_materials().otis_units
    {(6, 4): 12, (4, 6): 12, (3, 12): 1}
    >>> d.bill_of_materials().multiplexers
    48
    """

    def __init__(self, stacking_factor: int, degree: int, diameter: int) -> None:
        if diameter < 1:
            raise ValueError(f"need k >= 1, got {diameter}")
        super().__init__(
            stacking_factor=stacking_factor,
            ic_degree=degree,
            num_groups=kautz_num_nodes(degree, diameter),
            loop_via_fiber=True,
            name=f"SK({stacking_factor},{degree},{diameter})",
        )
        self.degree = degree
        self.diameter = diameter


class StackImaseItohDesign(MultiOPSOTISDesign):
    """Optical design of ``SII(s, d, n)`` -- the any-size extension."""

    def __init__(self, stacking_factor: int, degree: int, num_groups: int) -> None:
        super().__init__(
            stacking_factor=stacking_factor,
            ic_degree=degree,
            num_groups=num_groups,
            loop_via_fiber=True,
            name=f"SII({stacking_factor},{degree},{num_groups})",
        )
        self.degree = degree
