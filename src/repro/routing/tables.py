"""Precomputed routing tables for arbitrary digraphs.

Label-induced Kautz routing needs no tables, which is one of its
selling points; the tables here serve two purposes:

* a *reference oracle*: BFS-exact next-hop tables against which the
  algebraic routing is validated over all pairs (benchmark CLM-5);
* routing support for topologies without label routing (the de Bruijn
  and generalized-II baselines at non-Kautz sizes).

The table is built with one reverse BFS per destination, giving an
``(n, n)`` next-hop matrix: ``table[u, dest]`` is the neighbor of ``u``
that starts a shortest ``u -> dest`` path (``-1`` if unreachable,
``u`` itself when ``u == dest``).
"""

from __future__ import annotations

import numpy as np

from ..graphs.digraph import DiGraph

__all__ = ["RoutingTable", "build_routing_table"]


class RoutingTable:
    """All-pairs shortest-path next hops for a :class:`DiGraph`."""

    def __init__(self, graph: DiGraph, next_hop: np.ndarray, dist: np.ndarray) -> None:
        self.graph = graph
        self._next = next_hop
        self._dist = dist

    def next_hop(self, u: int, dest: int) -> int:
        """Neighbor of ``u`` on a shortest path to ``dest``.

        ``u`` itself when already there; ``-1`` when unreachable.  Ties
        break toward the smallest node id (deterministic).
        """
        return int(self._next[u, dest])

    def distance(self, u: int, dest: int) -> int:
        """Shortest-path distance; ``-1`` when unreachable."""
        return int(self._dist[u, dest])

    def path(self, u: int, dest: int) -> list[int] | None:
        """Full shortest path by following next hops."""
        if self._dist[u, dest] < 0:
            return None
        path = [u]
        while path[-1] != dest:
            nxt = self.next_hop(path[-1], dest)
            if nxt < 0:  # pragma: no cover - inconsistent table
                return None
            path.append(nxt)
        return path

    def verify(self) -> bool:
        """Cross-check the table against fresh forward BFS distances."""
        g = self.graph
        for u in range(g.num_nodes):
            if not np.array_equal(g.bfs_distances(u), self._dist[u]):
                return False
        for u in range(g.num_nodes):
            for dest in range(g.num_nodes):
                d = self._dist[u, dest]
                if d < 0 or u == dest:
                    continue
                nxt = self.next_hop(u, dest)
                if not g.has_arc(u, nxt):
                    return False
                if self._dist[nxt, dest] != d - 1:
                    return False
        return True

    @property
    def eccentricity_matrix_max(self) -> int:
        """The diameter implied by the table (max finite distance)."""
        finite = self._dist[self._dist >= 0]
        return int(finite.max()) if finite.size else 0


def build_routing_table(graph: DiGraph) -> RoutingTable:
    """One reverse BFS per destination; O(n * (n + m)) total.

    >>> from ..graphs.kautz import kautz_graph
    >>> t = build_routing_table(kautz_graph(2, 2))
    >>> t.path(0, 5) is not None
    True
    """
    n = graph.num_nodes
    rev = graph.reverse()
    next_hop = np.full((n, n), -1, dtype=np.int64)
    dist = np.full((n, n), -1, dtype=np.int64)
    for dest in range(n):
        dcol = rev.bfs_distances(dest)  # dcol[u] = dist(u -> dest) in graph
        dist[:, dest] = dcol
        next_hop[dest, dest] = dest
        # For each u, the next hop is the smallest successor v with
        # dist(v, dest) == dist(u, dest) - 1.
        for u in range(n):
            du = dcol[u]
            if du <= 0:
                continue
            for v in graph.successors(u).tolist():
                if dcol[v] == du - 1:
                    next_hop[u, dest] = v
                    break
    return RoutingTable(graph, next_hop, dist)
