"""Label-induced shortest-path routing on Kautz graphs (Sec. 2.5).

"Routing on the Kautz graph is very simple, since a shortest path
routing algorithm (every path is of length at most k) is induced by the
label of the nodes."  Concretely: to route from word ``x = (x1..xk)``
to ``y = (y1..yk)``, find the longest suffix of ``x`` that is a prefix
of ``y`` (length ``l``), then shift in the remaining ``k - l`` letters
of ``y`` one per hop.  Each hop is a legal Kautz arc and the path
length ``k - l <= k``; it is a *shortest* path because any walk from
``x`` to ``y`` must shift in at least the letters of ``y`` not already
overlapping.

The same idea works on Imase-Itoh node ids through the explicit word
isomorphism (:func:`route_imase_itoh`).
"""

from __future__ import annotations

from ..graphs.imase_itoh import (
    imase_itoh_index_to_kautz_word,
    kautz_word_to_imase_itoh_index,
)
from ..graphs.kautz import is_kautz_word

__all__ = [
    "longest_overlap",
    "kautz_route",
    "kautz_distance",
    "kautz_next_hop",
    "route_imase_itoh",
]


def longest_overlap(x: tuple[int, ...], y: tuple[int, ...]) -> int:
    """Length of the longest suffix of ``x`` equal to a prefix of ``y``.

    >>> longest_overlap((0, 1, 2), (1, 2, 0))
    2
    >>> longest_overlap((0, 1), (0, 1))
    2
    """
    k = min(len(x), len(y))
    for l in range(k, -1, -1):
        if l == 0 or x[len(x) - l :] == y[:l]:
            return l
    return 0  # pragma: no cover - loop always returns


def kautz_route(
    x: tuple[int, ...], y: tuple[int, ...], d: int
) -> list[tuple[int, ...]]:
    """The label-induced path from word ``x`` to word ``y``.

    Returns the node sequence ``[x, ..., y]``; its length (number of
    arcs) is ``k - longest_overlap(x, y) <= k``.

    >>> kautz_route((0, 1), (2, 0), 2)
    [(0, 1), (1, 2), (2, 0)]
    """
    if not is_kautz_word(x, d) or not is_kautz_word(y, d):
        raise ValueError(f"{x!r} or {y!r} is not a Kautz word over {{0..{d}}}")
    if len(x) != len(y):
        raise ValueError("source and destination words must have equal length")
    k = len(x)
    overlap = longest_overlap(x, y)
    path = [x]
    cur = x
    for i in range(overlap, k):
        cur = cur[1:] + (y[i],)
        path.append(cur)
    return path


def kautz_distance(x: tuple[int, ...], y: tuple[int, ...], d: int) -> int:
    """Length of the label-induced route: ``k - longest_overlap``.

    This equals the true graph distance (the route is shortest).
    """
    if not is_kautz_word(x, d) or not is_kautz_word(y, d):
        raise ValueError(f"{x!r} or {y!r} is not a Kautz word over {{0..{d}}}")
    if len(x) != len(y):
        raise ValueError("source and destination words must have equal length")
    return len(x) - longest_overlap(x, y)


def kautz_next_hop(
    x: tuple[int, ...], y: tuple[int, ...], d: int
) -> tuple[int, ...]:
    """First hop of the label-induced route (``x`` itself when ``x == y``).

    This is all a node needs to *forward* a message: the header carries
    the destination word, the node computes the overlap and shifts in
    one letter -- O(k) work, no tables.
    """
    route = kautz_route(x, y, d)
    return route[1] if len(route) > 1 else route[0]


def route_imase_itoh(u: int, v: int, d: int, k: int) -> list[int]:
    """Label-induced route between ``II(d, d**(k-1)(d+1))`` node ids.

    Converts through the explicit Kautz-word isomorphism, routes on
    words, converts back.  (For general ``n`` the Imase-Itoh graph has
    its own congruence routing; this helper covers the Kautz sizes the
    paper's networks use.)
    """
    wx = imase_itoh_index_to_kautz_word(u, d, k)
    wy = imase_itoh_index_to_kautz_word(v, d, k)
    return [
        kautz_word_to_imase_itoh_index(w, d) for w in kautz_route(wx, wy, d)
    ]
