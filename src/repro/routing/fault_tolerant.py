"""Fault-tolerant Kautz routing (Sec. 2.5, after Imase-Soneoka-Okada [17]).

The paper: label-induced routing "can be extended to generate a path of
length at most k + 2 which survives d - 1 link or node faults".  The
substance behind the claim is that ``KG(d, k)`` is maximally connected
(``d`` node-disjoint paths between distinct nodes) with wide-diameter
close to ``k + 2``.

This module provides:

* :class:`FaultSet` -- a set of failed nodes and arcs (words);
* :func:`candidate_paths` -- a structured family of alternative routes:
  the greedy path, the ``d`` one-step detours through each first hop,
  and the two-step detours, all completed greedily; lengths are
  bounded by ``k``, ``k+1`` and ``k+2`` respectively;
* :func:`fault_tolerant_route` -- first fault-free candidate in length
  order, falling back to BFS on the surviving subgraph (the fallback
  also certifies *dis*connection when no route exists);
* :func:`route_survives` -- predicate used by the benchmarks to measure
  the ``d-1``-fault guarantee empirically (benchmark CLM-5 sweeps
  exhaustive and randomized fault sets).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..graphs.kautz import is_kautz_word
from .kautz_routing import kautz_route

Word = tuple[int, ...]

__all__ = [
    "FaultSet",
    "candidate_paths",
    "fault_tolerant_route",
    "route_survives",
]


@dataclass(frozen=True)
class FaultSet:
    """Failed nodes and arcs, in Kautz-word coordinates.

    A path is *blocked* if any internal node (endpoints excluded --
    source and destination are assumed alive) or any traversed arc is
    in the set.  An arc fault is a *link* fault: the optical fiber
    pair dies as a unit, so a fault listed as ``(a, b)`` blocks
    traversal of both ``a -> b`` and ``b -> a``.
    """

    nodes: frozenset[Word] = field(default_factory=frozenset)
    arcs: frozenset[tuple[Word, Word]] = field(default_factory=frozenset)

    @classmethod
    def of(
        cls,
        nodes: list[Word] | None = None,
        arcs: list[tuple[Word, Word]] | None = None,
    ) -> "FaultSet":
        """Convenience constructor from lists."""
        return cls(
            nodes=frozenset(nodes or ()),
            arcs=frozenset(tuple(a) for a in (arcs or ())),
        )

    @classmethod
    def from_indices(
        cls,
        net,
        groups: "Iterable[int]" = (),
        couplers: "Iterable[int]" = (),
    ) -> "FaultSet":
        """Word-level faults from integer group / coupler ids.

        The graph-level adapter shared with :mod:`repro.resilience`:
        ``net`` is a built stack-Kautz network (anything exposing
        ``group_word`` and ``base_graph``), ``groups`` are base-graph
        node ids whose whole group failed, and ``couplers`` are
        hyperarc indices (== base-graph CSR arc indices) of failed
        couplers.  Loop couplers have no word-level arc -- their
        failure only affects sibling delivery, not group routing -- so
        they are dropped here.

        >>> from repro.networks.stack_kautz import StackKautzNetwork
        >>> net = StackKautzNetwork(2, 2, 2)
        >>> fs = FaultSet.from_indices(net, groups=[0])
        >>> fs.nodes == frozenset({net.group_word(0)})
        True
        """
        nodes = frozenset(net.group_word(int(g)) for g in groups)
        arc_array = net.base_graph().arc_array()
        arcs = set()
        for c in couplers:
            u, v = (int(x) for x in arc_array[int(c)])
            if u == v:
                continue
            arcs.add((net.group_word(u), net.group_word(v)))
        return cls(nodes=nodes, arcs=frozenset(arcs))

    @property
    def size(self) -> int:
        """Total number of faults."""
        return len(self.nodes) + len(self.arcs)

    def blocks_arc(self, a: Word, b: Word) -> bool:
        """Whether traversing ``a -> b`` crosses a faulted link.

        Checks both orientation forms: a link fault listed as
        ``(b, a)`` still kills the ``a -> b`` direction.
        """
        return (a, b) in self.arcs or (b, a) in self.arcs

    def blocks(self, path: list[Word]) -> bool:
        """Whether the path crosses any fault (endpoints exempt for nodes)."""
        for w in path[1:-1]:
            if w in self.nodes:
                return True
        for a, b in zip(path, path[1:]):
            if self.blocks_arc(a, b):
                return True
        return False


def _neighbors(w: Word, d: int) -> list[Word]:
    return [w[1:] + (z,) for z in range(d + 1) if z != w[-1]]


def candidate_paths(x: Word, y: Word, d: int) -> list[list[Word]]:
    """Structured alternative routes from ``x`` to ``y``, shortest first.

    * depth 0: the greedy label-induced route (length <= k);
    * depth 1: for each neighbor ``w`` of ``x``, ``x -> w`` + greedy
      (length <= k + 1);
    * depth 2: for each neighbor ``w`` and each neighbor ``w2`` of
      ``w``, ``x -> w -> w2`` + greedy (length <= k + 2).

    Simple paths only (cycles dropped), deduplicated, sorted by length.
    The family always contains paths through all ``d`` distinct first
    hops, which is what fault tolerance needs.
    """
    if not is_kautz_word(x, d) or not is_kautz_word(y, d):
        raise ValueError(f"{x!r} or {y!r} is not a Kautz word over {{0..{d}}}")
    if len(x) != len(y):
        raise ValueError("source and destination words must have equal length")
    paths: list[list[Word]] = []
    seen: set[tuple[Word, ...]] = set()

    def add(prefix: list[Word]) -> None:
        tail = kautz_route(prefix[-1], y, d)
        path = prefix + tail[1:]
        if len(set(path)) != len(path):
            return  # revisits a node: not a simple path
        key = tuple(path)
        if key not in seen:
            seen.add(key)
            paths.append(path)

    if x == y:
        return [[x]]
    add([x])
    for w in _neighbors(x, d):
        if w == y:
            add([x, w])
            continue
        add([x, w])
        for w2 in _neighbors(w, d):
            if w2 == x:
                continue
            if w2 == y:
                add([x, w, w2])
                continue
            add([x, w, w2])
    paths.sort(key=len)
    return paths


def fault_tolerant_route(
    x: Word,
    y: Word,
    d: int,
    faults: FaultSet,
    max_length: int | None = None,
) -> list[Word] | None:
    """A fault-free route ``x -> y``, preferring the structured candidates.

    Tries :func:`candidate_paths` in length order; when all are
    blocked, runs BFS on the surviving subgraph.  Returns ``None`` only
    when the faults disconnect ``y`` from ``x`` (or every surviving
    path exceeds ``max_length``, when given).

    With at most ``d - 1`` faults the returned path has length at most
    ``k + 2`` in every instance we have swept (benchmark CLM-5);
    ``max_length = k + 2`` turns that expectation into a hard check.
    """
    if x in faults.nodes or y in faults.nodes:
        raise ValueError("source and destination must be fault-free")
    if x == y:
        return [x]
    for path in candidate_paths(x, y, d):
        if not faults.blocks(path):
            if max_length is None or len(path) - 1 <= max_length:
                return path
    # BFS fallback over the surviving subgraph.
    parent: dict[Word, Word] = {x: x}
    queue: deque[Word] = deque([x])
    while queue:
        w = queue.popleft()
        for nb in _neighbors(w, d):
            if nb in parent:
                continue
            if faults.blocks_arc(w, nb):
                continue
            if nb in faults.nodes and nb != y:
                continue
            parent[nb] = w
            if nb == y:
                path = [nb]
                while path[-1] != x:
                    path.append(parent[path[-1]])
                path.reverse()
                if max_length is not None and len(path) - 1 > max_length:
                    return None
                return path
            queue.append(nb)
    return None


def route_survives(
    x: Word,
    y: Word,
    d: int,
    faults: FaultSet,
    max_length: int,
) -> bool:
    """Whether some fault-free route of length <= ``max_length`` exists.

    The empirical form of the paper's ``k + 2`` claim: with
    ``faults.size <= d - 1`` and ``max_length = k + 2``, this should
    always hold.
    """
    return fault_tolerant_route(x, y, d, faults, max_length=max_length) is not None
