"""Routing algorithms for the paper's networks.

* :mod:`repro.routing.kautz_routing` -- label-induced shortest paths
  (<= k hops, no tables);
* :mod:`repro.routing.fault_tolerant` -- the k+2 / (d-1)-fault
  extension of [17];
* :mod:`repro.routing.pops_routing` -- one-hop routing and slot
  scheduling on POPS;
* :mod:`repro.routing.stack_routing` -- group routing + loop delivery
  on stack-Kautz;
* :mod:`repro.routing.tables` -- BFS-exact reference tables.
"""

from .fault_tolerant import (
    FaultSet,
    candidate_paths,
    fault_tolerant_route,
    route_survives,
)
from .kautz_routing import (
    kautz_distance,
    kautz_next_hop,
    kautz_route,
    longest_overlap,
    route_imase_itoh,
)
from .pops_routing import (
    coupler_loads,
    one_to_all_slots,
    permutation_slots,
    schedule_messages,
    total_exchange_slots,
)
from .stack_routing import (
    StackHop,
    StackRoute,
    stack_kautz_distance,
    stack_kautz_route,
)
from .tables import RoutingTable, build_routing_table

__all__ = [
    "FaultSet",
    "RoutingTable",
    "StackHop",
    "StackRoute",
    "build_routing_table",
    "candidate_paths",
    "coupler_loads",
    "fault_tolerant_route",
    "kautz_distance",
    "kautz_next_hop",
    "kautz_route",
    "longest_overlap",
    "one_to_all_slots",
    "permutation_slots",
    "route_imase_itoh",
    "route_survives",
    "schedule_messages",
    "stack_kautz_route",
    "total_exchange_slots",
    "stack_kautz_distance",
]
