"""Routing and slot scheduling on POPS networks.

POPS is single-hop: the route from processor ``src`` to ``dst`` is the
single coupler ``(group(src), group(dst))``.  The interesting problem
is *scheduling*: each coupler is single-wavelength, so two messages
entering the same coupler need different time slots.  This module
provides collision-free slot schedules for message batches:

* :func:`schedule_messages` -- greedy first-fit slotting of an
  arbitrary batch (optimal here: the constraint graph is an interval
  structure per coupler, so max-load slots suffice);
* :func:`permutation_slots` -- slots needed by a permutation, with the
  exact lower bound ``max_coupler_load`` it always achieves;
* :func:`one_to_all_slots` -- broadcast cost (1 slot when a processor
  may drive all its ``g`` transmitters at once, ``g`` when it must
  serialize).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..networks.pops import POPSNetwork

__all__ = [
    "coupler_loads",
    "schedule_messages",
    "permutation_slots",
    "one_to_all_slots",
]


def coupler_loads(
    net: POPSNetwork, messages: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Messages per coupler, as a ``(g, g)`` matrix indexed ``(i, j)``.

    Entry ``(i, j)`` counts the batch messages whose source lies in
    group ``i`` and destination in group ``j``.
    """
    g = net.num_groups
    loads = np.zeros((g, g), dtype=np.int64)
    for src, dst in messages:
        i, j = net.route(src, dst)
        loads[i, j] += 1
    return loads


def schedule_messages(
    net: POPSNetwork, messages: Sequence[tuple[int, int]]
) -> list[list[tuple[int, int]]]:
    """Collision-free slot schedule for a batch of ``(src, dst)`` messages.

    Greedy first-fit per coupler.  Two messages conflict iff they use
    the same coupler; a message also cannot be sent twice by the same
    processor *on the same transmitter port* in one slot, which for
    distinct messages through one coupler is already excluded.  The
    schedule length equals ``coupler_loads(...).max()`` -- the trivial
    lower bound -- because couplers are independent resources.

    Returns a list of slots, each a list of messages.
    """
    slots: list[list[tuple[int, int]]] = []
    used: list[set[tuple[int, int]]] = []  # couplers occupied per slot
    tx_busy: list[set[tuple[int, int]]] = []  # (processor, port) per slot
    for src, dst in messages:
        coupler = net.route(src, dst)
        port = net.transmitter_port(src, dst)
        placed = False
        for t, occupied in enumerate(used):
            if coupler in occupied or (src, port) in tx_busy[t]:
                continue
            occupied.add(coupler)
            tx_busy[t].add((src, port))
            slots[t].append((src, dst))
            placed = True
            break
        if not placed:
            slots.append([(src, dst)])
            used.append({coupler})
            tx_busy.append({(src, port)})
    return slots


def permutation_slots(net: POPSNetwork, perm: Sequence[int]) -> int:
    """Slots needed to route permutation ``perm`` (``dst = perm[src]``).

    Exactly ``max_{i,j} |{p in group i : perm[p] in group j}|``; between
    ``ceil(t/g)``-ish loads for random permutations and ``t`` when a
    whole group maps into a single group.
    """
    n = net.num_processors
    if sorted(perm) != list(range(n)):
        raise ValueError("perm must be a permutation of all processors")
    messages = [(src, int(perm[src])) for src in range(n)]
    schedule = schedule_messages(net, messages)
    lower = int(coupler_loads(net, messages).max())
    assert len(schedule) == lower, "greedy schedule missed the lower bound"
    return len(schedule)


def total_exchange_slots(net: POPSNetwork) -> int:
    """Slots for all-to-all *personalized* exchange (every ordered pair).

    Unlike gossip (identical datum to everyone, one transmission
    serves a whole group), personalized exchange sends a distinct
    message per (src, dst) pair and the couplers bind: coupler
    ``(i, j)`` must carry every message from group ``i`` to group
    ``j`` -- ``t*t`` of them (``t*(t-1)`` when ``i == j``), so
    ``t**2`` slots are necessary, and the greedy scheduler meets that
    bound exactly.

    >>> from repro.networks import POPSNetwork
    >>> total_exchange_slots(POPSNetwork(4, 2))
    16
    """
    n = net.num_processors
    messages = [
        (src, dst) for src in range(n) for dst in range(n) if src != dst
    ]
    schedule = schedule_messages(net, messages)
    t = net.group_size
    expected = t * t if net.num_groups > 1 else t * (t - 1)
    assert len(schedule) == expected, (len(schedule), expected)
    return len(schedule)


def one_to_all_slots(net: POPSNetwork, simultaneous_ports: bool = True) -> int:
    """Slots for a one-to-all broadcast from any single processor.

    With ``simultaneous_ports`` the source drives its ``g``
    transmitters in one slot -- every group's inbound coupler from the
    source's group carries the message at once: **1 slot** (the
    single-hop headline of [9]).  Serializing the ports costs ``g``
    slots.
    """
    _ = net
    return 1 if simultaneous_ports else net.num_groups
