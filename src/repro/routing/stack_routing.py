"""Routing on stack-Kautz networks (group routing + OPS hops).

A message in ``SK(s, d, k)`` travels between *groups* along the Kautz
graph; inside a hop, any processor of the sending group may transmit
and every processor of the receiving group hears.  Routing therefore
decomposes as:

1. group-level route: label-induced Kautz routing on the group words
   (:mod:`repro.routing.kautz_routing`) -- at most ``k`` hops;
2. same-group delivery: one extra hop through the group's *loop
   coupler* when source and destination share a group but are distinct
   processors;
3. at each intermediate group, the message is re-transmitted by the
   processor that received it (any group member works; the simulator
   decides queueing).

:class:`StackRoute` records the hop sequence as coupler labels plus the
transmitter port driving each hop, ready to execute on the optical
design (whose port conventions it shares) or in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.stack_kautz import StackKautzNetwork
from .kautz_routing import kautz_distance, kautz_route

__all__ = ["StackHop", "StackRoute", "stack_kautz_route", "stack_kautz_distance"]


@dataclass(frozen=True)
class StackHop:
    """One OPS traversal: which coupler, driven on which port.

    ``src_group``/``dst_group`` are group ids; ``mux`` identifies the
    coupler as ``(src_group, mux)`` in design coordinates;
    ``tx_port`` is the transmitter port any sender uses for it;
    ``is_loop`` marks the group's loop coupler.
    """

    src_group: int
    dst_group: int
    mux: int
    tx_port: int
    is_loop: bool


@dataclass(frozen=True)
class StackRoute:
    """A full route: source processor, hops, destination processor."""

    src: int
    dst: int
    hops: tuple[StackHop, ...]

    @property
    def num_hops(self) -> int:
        """Optical hops traversed (0 when src == dst)."""
        return len(self.hops)


def _hop(net: StackKautzNetwork, u: int, v: int) -> StackHop:
    """The hop from group ``u`` to successor group ``v`` (or loop u==v)."""
    d = net.degree
    n = net.num_groups
    if u == v:
        # Loop coupler: mux index d, port 0 (= D-1-mux with D = d+1).
        return StackHop(u, u, mux=d, tx_port=0, is_loop=True)
    a = (-d * u - v) % n
    if not 1 <= a <= d:
        raise ValueError(f"group {v} is not an Imase-Itoh successor of {u}")
    m = a - 1
    return StackHop(u, v, mux=m, tx_port=d - m, is_loop=False)


def stack_kautz_route(net: StackKautzNetwork, src: int, dst: int) -> StackRoute:
    """Route from processor ``src`` to ``dst`` in ``net``.

    >>> net = StackKautzNetwork(6, 3, 2)
    >>> r = stack_kautz_route(net, 0, 71)
    >>> r.num_hops <= net.diameter
    True
    """
    xs, _ys = net.label_of(src)
    xd, _yd = net.label_of(dst)
    if src == dst:
        return StackRoute(src, dst, ())
    if xs == xd:
        return StackRoute(src, dst, (_hop(net, xs, xs),))
    words = kautz_route(net.group_word(xs), net.group_word(xd), net.degree)
    groups = [net.group_of_word(w) for w in words]
    hops = tuple(_hop(net, u, v) for u, v in zip(groups, groups[1:]))
    return StackRoute(src, dst, hops)


def stack_kautz_distance(net: StackKautzNetwork, src: int, dst: int) -> int:
    """Hop count of the label-induced route (== optical hop distance).

    0 for ``src == dst``; 1 for same-group siblings; the Kautz word
    distance otherwise.  Never exceeds ``k``.
    """
    xs, _ = net.label_of(src)
    xd, _ = net.label_of(dst)
    if src == dst:
        return 0
    if xs == xd:
        return 1
    return kautz_distance(net.group_word(xs), net.group_word(xd), net.degree)
