"""The network-family registry: one registration, five behaviours.

A :class:`NetworkFamily` descriptor bundles everything the toolkit
needs to drive one topology family end to end -- constructor, router,
simulator factory, optical-design factory, parameter schema and an
equal-``N`` size enumerator.  Registering a family (the
:func:`register_family` class decorator) makes it reachable from the
facade (:func:`repro.build` and friends), the CLI, the comparison
tables and the sweep matrix with **no** per-family ``if/elif`` chains
anywhere downstream: adding a topology is one subclass, not edits to
five modules.

>>> sorted(family_keys())
['pops', 'sii', 'sk', 'sops']
>>> get_family("sk").construct(6, 3, 2).num_processors
72
>>> get_family("stack-kautz").key            # aliases resolve too
'sk'
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from .spec import Param, SpecError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .spec import NetworkSpec

__all__ = [
    "NetworkFamily",
    "register_family",
    "get_family",
    "family_keys",
    "iter_families",
    "family_for_network",
]

_REGISTRY: dict[str, "NetworkFamily"] = {}
_ALIASES: dict[str, str] = {}


class NetworkFamily:
    """Descriptor of one topology family; subclass + register to add one.

    Class attributes
    ----------------
    key:
        Canonical family key used in specs (``"sk"``, ``"pops"``, ...).
    title:
        Human-readable family name.
    params:
        The parameter schema, a tuple of :class:`~repro.core.spec.Param`
        in positional order.
    network_type:
        The class :meth:`construct` returns; used to dispatch from a
        network *instance* back to its family.
    aliases:
        Alternative keys accepted by :func:`get_family`.

    Methods to override
    -------------------
    ``construct``, ``route``, ``simulator``, ``design`` and ``sizes``
    (the equal-``N`` enumerator used by comparison tables).
    """

    key: str = ""
    title: str = ""
    params: tuple[Param, ...] = ()
    network_type: type | None = None
    aliases: tuple[str, ...] = ()
    #: Display name for the family's non-loop couplers ("Kautz", ...).
    coupler_kind: str = "OPS"

    # -- behaviours ----------------------------------------------------
    def construct(self, *params: int):
        """Build the network instance for ``params``."""
        raise NotImplementedError

    def route(self, net, src: int, dst: int):
        """Route ``src -> dst`` on ``net``; returns a ``StackRoute``."""
        raise NotImplementedError

    def simulator(self, net, policy=None):
        """A ready :class:`~repro.simulation.engine.SlottedSimulator`."""
        raise NotImplementedError

    def design(self, *params: int):
        """The full optical design (verifiable, with a BOM)."""
        raise NotImplementedError

    def sizes(self, target_n: int) -> Iterator["NetworkSpec"]:
        """Yield every family spec with exactly ``target_n`` processors."""
        raise NotImplementedError

    def candidate_specs(
        self, *, max_processors: int, min_processors: int = 2
    ) -> Iterator["NetworkSpec"]:
        """Every buildable family spec within the processor-count window.

        The enumeration hook behind :func:`repro.design_search`: yield
        each spec whose machine has between ``min_processors`` and
        ``max_processors`` processors (inclusive), in deterministic
        order.  The default walks the equal-``N`` enumerator over the
        whole window; families with cheap direct parameterizations
        override this (stack-Kautz enumerates ``(s, d, k)`` directly
        instead of scanning every ``N`` for divisors).
        """
        if max_processors < min_processors:
            return
        for n in range(min_processors, max_processors + 1):
            yield from self.sizes(n)

    def fault_route(
        self, net, src_group: int, dst_group: int, degraded
    ) -> list[int] | None:
        """A group-level path ``src_group -> dst_group`` avoiding faults.

        ``degraded`` is a
        :class:`~repro.resilience.degrade.DegradedNetwork` over ``net``.
        Returns the list of groups visited (``[g]`` when source and
        destination coincide) or ``None`` when the faults sever the
        pair.  The default walks BFS over the surviving base digraph;
        families with structured fault-tolerant routing (stack-Kautz's
        ``k + 2`` candidate family) override this.
        """
        if src_group == dst_group:
            return [src_group]
        return degraded.surviving_base().shortest_path(src_group, dst_group)

    # -- description ---------------------------------------------------
    def signature(self) -> str:
        """``key(p1,p2,...)`` with schema parameter names."""
        return f"{self.key}({','.join(p.name for p in self.params)})"

    def describe(self) -> str:
        """One usage line for CLI help and error messages."""
        plist = "; ".join(f"{p.name}: {p.description}" for p in self.params)
        return f"{self.signature()} -- {self.title} ({plist})"


def register_family(cls: type[NetworkFamily]) -> type[NetworkFamily]:
    """Class decorator: instantiate ``cls`` and add it to the registry.

    The registry maps both the canonical key and every alias
    (case-insensitively) to the single descriptor instance.
    """
    family = cls()
    if not family.key:
        raise ValueError(f"{cls.__name__} must define a non-empty 'key'")
    key = family.key.lower()
    if key in _REGISTRY or key in _ALIASES:
        raise ValueError(f"network family key {key!r} is already taken")
    _REGISTRY[key] = family
    for alias in family.aliases:
        alias = alias.lower()
        if alias in _REGISTRY or alias in _ALIASES:
            raise ValueError(f"family alias {alias!r} is already taken")
        _ALIASES[alias] = key
    return cls


def _ensure_builtin_families() -> None:
    """Idempotently import the built-in family registrations."""
    from . import families as _families  # noqa: F401


def get_family(key: str) -> NetworkFamily:
    """The descriptor for ``key`` (canonical or alias, case-insensitive)."""
    _ensure_builtin_families()
    k = key.strip().lower()
    k = _ALIASES.get(k, k)
    try:
        return _REGISTRY[k]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SpecError(
            f"unknown network family {key!r}; known families: {known}"
        ) from None


def family_keys() -> tuple[str, ...]:
    """All registered canonical family keys, sorted."""
    _ensure_builtin_families()
    return tuple(sorted(_REGISTRY))


def iter_families() -> Iterator[NetworkFamily]:
    """All registered descriptors, in sorted key order."""
    _ensure_builtin_families()
    for key in sorted(_REGISTRY):
        yield _REGISTRY[key]


def family_for_network(net) -> NetworkFamily:
    """The family descriptor owning a network *instance*.

    Dispatches on :attr:`NetworkFamily.network_type`; this is how
    :func:`repro.simulation.simulator_for` stays family-agnostic.
    """
    _ensure_builtin_families()
    for family in _REGISTRY.values():
        if family.network_type is not None and isinstance(
            net, family.network_type
        ):
            return family
    raise SpecError(
        f"no registered network family owns instances of "
        f"{type(net).__name__}"
    )
