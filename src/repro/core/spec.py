"""`NetworkSpec`: one canonical, hashable name for every network.

A spec is a family key plus an integer parameter tuple -- ``sk(6,3,2)``
is the stack-Kautz network of paper Fig. 7, ``pops(4,2)`` the POPS of
Fig. 4, ``sii(4,3,10)`` a stack-Imase-Itoh machine, ``sops(8)`` the
single-OPS baseline.  Every facade entry point
(:func:`repro.build`, :func:`repro.simulate`, ...), the CLI and the
comparison tables all speak this one language, so "which network" is
a value you can hash, sort, print and parse back.

Parsing accepts the canonical string, loose token strings, dicts
(positional or by parameter name) and CLI argv lists; validation is
driven by the registered family's parameter schema and always names
the offending parameter.

>>> NetworkSpec.parse("sk(6,3,2)")
NetworkSpec(family='sk', params=(6, 3, 2))
>>> str(NetworkSpec.parse("sk 6 3 2"))
'sk(6,3,2)'
>>> NetworkSpec.parse({"family": "pops", "t": 4, "g": 2}).params
(4, 2)
>>> NetworkSpec.parse("sk(6,3)")
Traceback (most recent call last):
    ...
repro.core.spec.SpecError: sk(s,d,k) takes 3 parameters (s, d, k); missing 'k' (got 2)
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

__all__ = ["NetworkSpec", "Param", "SpecError"]


class SpecError(ValueError):
    """A network spec failed validation; the message names the culprit."""


@dataclass(frozen=True)
class Param:
    """One entry of a family's parameter schema.

    >>> Param("d", "degree of the group graph", minimum=2)
    Param(name='d', description='degree of the group graph', minimum=2)
    """

    name: str
    description: str
    minimum: int = 1


_SPEC_TOKEN = re.compile(r"[+-]?\d+|[A-Za-z_][A-Za-z0-9_-]*")
_SPEC_ALLOWED = re.compile(r"^[A-Za-z0-9_+\-,()\s:]*$")


def _coerce_int(family: str, param: Param, value: object) -> int:
    """``value`` as an int, or a :class:`SpecError` naming ``param``."""
    if isinstance(value, bool):
        raise SpecError(
            f"{family} parameter {param.name!r} must be an integer, got {value!r}"
        )
    try:
        out = int(value)  # type: ignore[call-overload]
    except (TypeError, ValueError):
        raise SpecError(
            f"{family} parameter {param.name!r} must be an integer, got {value!r}"
        ) from None
    if isinstance(value, float) and value != out:
        raise SpecError(
            f"{family} parameter {param.name!r} must be an integer, got {value!r}"
        )
    return out


@dataclass(frozen=True)
class NetworkSpec:
    """A frozen, hashable network name: family key + parameter tuple.

    Construction validates against the registered family's schema, so a
    spec that exists is a spec that builds.

    >>> spec = NetworkSpec("sk", (6, 3, 2))
    >>> spec.canonical()
    'sk(6,3,2)'
    >>> spec.params_dict()
    {'s': 6, 'd': 3, 'k': 2}
    >>> NetworkSpec("sk", (6, 0, 2))
    Traceback (most recent call last):
        ...
    repro.core.spec.SpecError: sk parameter 'd' must be >= 1, got 0
    """

    family: str
    params: tuple[int, ...]

    def __post_init__(self) -> None:
        from .registry import get_family

        family = get_family(self.family)  # raises SpecError when unknown
        object.__setattr__(self, "family", family.key)
        schema = family.params
        signature = f"{family.key}({','.join(p.name for p in schema)})"
        names = ", ".join(p.name for p in schema)
        if len(self.params) < len(schema):
            missing = ", ".join(
                repr(p.name) for p in schema[len(self.params) :]
            )
            raise SpecError(
                f"{signature} takes {len(schema)} parameters ({names}); "
                f"missing {missing} (got {len(self.params)})"
            )
        if len(self.params) > len(schema):
            extra = ",".join(map(str, self.params[len(schema) :]))
            raise SpecError(
                f"{signature} takes {len(schema)} parameters ({names}); "
                f"unexpected extra value(s) {extra} after "
                f"{schema[-1].name!r} (got {len(self.params)})"
            )
        coerced = tuple(
            _coerce_int(family.key, p, v) for p, v in zip(schema, self.params)
        )
        for p, v in zip(schema, coerced):
            if v < p.minimum:
                raise SpecError(
                    f"{family.key} parameter {p.name!r} must be "
                    f">= {p.minimum}, got {v}"
                )
        object.__setattr__(self, "params", coerced)

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, value: object) -> "NetworkSpec":
        """Parse a spec from a string, dict, sequence or spec.

        Strings accept the canonical form and loose token forms:
        ``"sk(6,3,2)"``, ``"sk 6 3 2"``, ``"sk,6,3,2"``, ``"sk: 6 3 2"``.
        Dicts carry ``{"family": ..., "params": [...]}`` or name the
        parameters per the family schema.  Sequences are
        ``(family, p0, p1, ...)`` with string or int entries.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls._parse_str(value)
        if isinstance(value, Mapping):
            return cls._parse_dict(value)
        if isinstance(value, Sequence):
            return cls.from_argv([str(tok) for tok in value])
        raise SpecError(
            f"cannot parse a network spec from {type(value).__name__}: {value!r}"
        )

    @classmethod
    def _parse_str(cls, text: str) -> "NetworkSpec":
        if not _SPEC_ALLOWED.match(text):
            raise SpecError(f"malformed network spec {text!r}")
        tokens = _SPEC_TOKEN.findall(text)
        if not tokens or not tokens[0][0].isalpha() and tokens[0][0] != "_":
            raise SpecError(
                f"malformed network spec {text!r}: expected 'family(p1,p2,...)'"
            )
        return cls.from_argv(tokens)

    @classmethod
    def _parse_dict(cls, data: Mapping) -> "NetworkSpec":
        from .registry import get_family

        if "family" not in data:
            raise SpecError(f"spec dict needs a 'family' key, got {dict(data)!r}")
        family = get_family(str(data["family"]))
        if "params" in data:
            extras = set(data) - {"family", "params"}
            if extras:
                raise SpecError(
                    f"{family.key} spec dict mixes 'params' with named "
                    f"key(s): {', '.join(sorted(map(repr, extras)))}"
                )
            params = tuple(data["params"])
        else:
            params = []
            for p in family.params:
                if p.name not in data:
                    raise SpecError(
                        f"{family.key} spec dict is missing parameter {p.name!r}"
                    )
                params.append(data[p.name])
            extras = set(data) - {"family"} - {p.name for p in family.params}
            if extras:
                raise SpecError(
                    f"{family.key} spec dict has unknown key(s): "
                    f"{', '.join(sorted(map(repr, extras)))}"
                )
            params = tuple(params)
        return cls(family.key, params)

    @classmethod
    def from_argv(cls, argv: Sequence[str]) -> "NetworkSpec":
        """Parse CLI-style tokens: ``["sk", "6", "3", "2"]`` or ``["sk(6,3,2)"]``.

        >>> NetworkSpec.from_argv(["pops", "4", "2"])
        NetworkSpec(family='pops', params=(4, 2))
        """
        tokens = [str(tok).strip() for tok in argv if str(tok).strip()]
        if not tokens:
            raise SpecError("empty network spec")
        if len(tokens) == 1 and not _is_intlike(tokens[0]):
            head = _SPEC_TOKEN.findall(tokens[0])
            if len(head) > 1:
                return cls._parse_str(tokens[0])
        family_key = tokens[0]
        from .registry import get_family

        family = get_family(family_key)
        raw = tokens[1:]
        params = []
        for i, tok in enumerate(raw):
            if not _is_intlike(tok):
                name = (
                    family.params[i].name
                    if i < len(family.params)
                    else f"#{i + 1}"
                )
                raise SpecError(
                    f"{family.key} parameter {name!r} must be an integer, "
                    f"got {tok!r}"
                )
            params.append(int(tok))
        return cls(family.key, tuple(params))

    # ------------------------------------------------------------------
    # Canonical form and views
    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """The canonical string form, ``family(p1,p2,...)``."""
        return f"{self.family}({','.join(map(str, self.params))})"

    def params_dict(self) -> dict[str, int]:
        """Parameters keyed by their schema names."""
        from .registry import get_family

        return {
            p.name: v
            for p, v in zip(get_family(self.family).params, self.params)
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view: family plus named parameters."""
        return {"family": self.family, **self.params_dict()}

    # ------------------------------------------------------------------
    # Convenience hops into the registry
    # ------------------------------------------------------------------
    def build(self):
        """The network instance this spec names (see :func:`repro.build`)."""
        from .registry import get_family

        return get_family(self.family).construct(*self.params)

    def design(self):
        """The optical design this spec names (see :func:`repro.design`)."""
        from .registry import get_family

        return get_family(self.family).design(*self.params)

    def __str__(self) -> str:
        return self.canonical()


def _is_intlike(tok: str) -> bool:
    t = tok.strip()
    if t and t[0] in "+-":
        t = t[1:]
    return t.isdigit()
