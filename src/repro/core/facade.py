"""The package facade: spec in, result out.

Five verbs cover the paper's whole pipeline for every registered
family, with a :class:`~repro.core.spec.NetworkSpec` (or anything
parseable into one) naming the machine:

* :func:`build` -- the network object;
* :func:`route` -- a hop-by-hop route in optical-design coordinates;
* :func:`simulate` -- run a named workload, get a
  :class:`~repro.simulation.metrics.SimulationReport`;
* :func:`design` -- the verifiable OTIS optical design with its BOM;
* :func:`sweep` -- a specs x workloads result matrix in one call;
* :func:`degrade` -- the network with an injected fault scenario, as a
  :class:`~repro.resilience.degrade.DegradedNetwork`;
* :func:`resilience_sweep` -- Monte-Carlo survivability quantiles
  under seeded fault models, parallel and worker-count deterministic;
* :func:`design_search` -- enumerate, price and sweep candidate
  designs across families; ranked survivability-per-cost report with
  a Pareto front.

>>> import repro
>>> repro.build("sk(6,3,2)").num_processors
72
>>> repro.route("pops(4,2)", 0, 7).num_hops
1
>>> repro.design("sk(6,3,2)").verify()
True
>>> repro.simulate("sk(2,2,2)", messages=40).num_messages
40
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from .registry import get_family
from .spec import NetworkSpec

__all__ = [
    "build",
    "route",
    "simulate",
    "design",
    "describe",
    "sweep",
    "degrade",
    "resilience_sweep",
    "design_search",
    "SweepCell",
    "SweepResult",
]


def build(spec) -> object:
    """The network instance named by ``spec``.

    ``spec`` is anything :meth:`NetworkSpec.parse` accepts: a spec, a
    canonical string, a loose token string, a dict, or a token list.
    """
    return NetworkSpec.parse(spec).build()


def design(spec) -> object:
    """The full optical design named by ``spec`` (verifiable, with BOM)."""
    return NetworkSpec.parse(spec).design()


def route(spec, src: int, dst: int):
    """Route processor ``src -> dst`` on the network named by ``spec``.

    Returns a :class:`~repro.routing.stack_routing.StackRoute` whose
    hops carry ``(group, mux)`` coupler ids and transmitter ports in
    the optical design's coordinates, for every family.
    """
    parsed = NetworkSpec.parse(spec)
    family = get_family(parsed.family)
    net = parsed.build()
    n = net.num_processors
    for name, value in (("src", src), ("dst", dst)):
        if not 0 <= value < n:
            raise IndexError(
                f"{name} processor {value} out of range [0, {n}) for {parsed}"
            )
    return family.route(net, src, dst)


def simulate(
    spec,
    workload="uniform",
    *,
    messages: int = 200,
    seed: int = 0,
    policy=None,
    max_slots: int = 100_000,
    **workload_options,
):
    """Run ``workload`` on the network named by ``spec``.

    ``workload`` is a registered name (see
    :func:`repro.core.workloads.workload_names`), a callable, or an
    explicit ``(src, dst, slot)`` triple list.  Returns the
    :class:`~repro.simulation.metrics.SimulationReport`.
    """
    from ..simulation.network_sim import run_traffic
    from .workloads import resolve_workload

    parsed = NetworkSpec.parse(spec)
    family = get_family(parsed.family)
    net = parsed.build()
    traffic = resolve_workload(
        workload, net, messages=messages, seed=seed, **workload_options
    )
    sim = family.simulator(net, policy)
    return run_traffic(sim, traffic, max_slots=max_slots)


def describe(spec) -> dict[str, object]:
    """A JSON-ready summary of the network named by ``spec``.

    >>> describe("pops(4,2)")["processors"]
    8
    """
    parsed = NetworkSpec.parse(spec)
    net = parsed.build()
    return {
        "spec": parsed.canonical(),
        "family": parsed.family,
        "params": parsed.params_dict(),
        "processors": net.num_processors,
        "groups": net.num_groups,
        "couplers": net.num_couplers,
        "coupler_degree": net.coupler_degree,
        "processor_degree": net.processor_degree,
        "diameter": net.diameter,
    }


def degrade(
    spec, *, model="coupler", faults: int | None = None, seed: int = 0, scenario=None
):
    """The network named by ``spec`` with a fault scenario applied.

    ``model`` is a registered fault-model key (``"coupler"``,
    ``"processor"``, ``"link"``, ``"adversarial"``, ``"group"``) --
    which takes intensity ``faults`` (default 1) -- or a
    :class:`~repro.resilience.faults.FaultModel` instance, which
    already carries its intensity (combining it with ``faults`` is an
    error).  Pass an explicit ``scenario`` to replay a previous draw
    instead.  Returns a
    :class:`~repro.resilience.degrade.DegradedNetwork`.

    >>> deg = degrade("sk(2,2,2)", model="coupler", faults=1, seed=3)
    >>> len(deg.dead_couplers)
    1
    """
    from ..resilience.degrade import DegradedNetwork
    from ..resilience.faults import FaultModel, make_fault_model

    parsed = NetworkSpec.parse(spec)
    net = parsed.build()
    if scenario is None:
        if isinstance(model, str):
            model = make_fault_model(model, 1 if faults is None else faults)
        elif not isinstance(model, FaultModel):
            raise TypeError(
                f"model must be a fault-model key or FaultModel, "
                f"got {type(model).__name__}"
            )
        elif faults is not None:
            raise ValueError(
                "faults applies to string model keys; a FaultModel "
                "instance already carries its intensity"
            )
        scenario = model.scenario(parsed.canonical(), net, seed)
    return DegradedNetwork(net, scenario)


def resilience_sweep(
    spec,
    *,
    model="coupler",
    faults: int = 1,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    workload: str = "uniform",
    messages: int = 60,
    bound: int | None = None,
    max_slots: int = 100_000,
    metrics: str = "full",
    backend: str = "batched",
):
    """Monte-Carlo survivability sweep of ``spec`` under ``model``.

    Fans ``trials`` seeded fault scenarios (optionally across
    ``workers`` processes -- the aggregate is worker-count
    independent) and returns the quantile
    :class:`~repro.resilience.sweep.SweepSummary`.  ``metrics``
    selects scoring depth (``"full"``, ``"paths"``,
    ``"connectivity"``) and ``backend`` the executor (``"batched"``
    default, ``"legacy"`` the rebuild-per-trial reference path).

    >>> s = resilience_sweep("pops(2,2)", faults=1, trials=3, messages=6)
    >>> 0.0 <= s.quantiles["delivery_ratio"]["p50"] <= 1.0
    True
    """
    from ..resilience.sweep import survivability_sweep

    return survivability_sweep(
        spec,
        model,
        faults=faults,
        trials=trials,
        seed=seed,
        workers=workers,
        workload=workload,
        messages=messages,
        bound=bound,
        max_slots=max_slots,
        metrics=metrics,
        backend=backend,
    )


def design_search(
    *,
    max_processors: int,
    min_processors: int = 2,
    families=None,
    model="coupler",
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    metrics: str = "connectivity",
    workload: str = "uniform",
    messages: int = 60,
    cost_model=None,
    max_coupler_degree: int | None = None,
    min_groups: int | None = None,
    max_groups: int | None = None,
    max_diameter: int | None = None,
    min_margin_db: float | None = None,
    top: int | None = None,
):
    """Resilience-aware design search over every registered family.

    Enumerates candidate specs in the processor window, prices each
    design's bill of materials, runs one seeded batched survivability
    sweep per candidate (``model`` is a fault-model key taking
    intensity ``faults``, default 1, or a
    :class:`~repro.resilience.faults.FaultModel` instance carrying its
    own), and returns a
    :class:`~repro.design_search.search.DesignSearchResult`: ranked by
    survivability per 1000 cost units, (cost, survivability, diameter)
    Pareto front marked.  Candidates too small to absorb ``faults``
    are skipped (and listed in ``skipped_underfaulted``) rather than
    scored as immune.  Deterministic: same parameters and seed give
    byte-identical ``to_json()`` output.

    >>> r = design_search(max_processors=8, families=("pops",), trials=4)
    >>> len(r) >= 1
    True
    """
    from ..design_search.search import design_search as _search

    return _search(
        max_processors=max_processors,
        min_processors=min_processors,
        families=families,
        model=model,
        faults=faults,
        trials=trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        workload=workload,
        messages=messages,
        cost_model=cost_model,
        max_coupler_degree=max_coupler_degree,
        min_groups=min_groups,
        max_groups=max_groups,
        max_diameter=max_diameter,
        min_margin_db=min_margin_db,
        top=top,
    )


# ----------------------------------------------------------------------
# Sweep: the scenario matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One (spec, workload) cell of a sweep, flattened for tabulation."""

    spec: str
    workload: str
    processors: int
    messages: int
    slots: int
    mean_latency: float
    p95_latency: float
    max_latency: int
    mean_hops: float
    throughput: float
    coupler_utilization: float

    def as_dict(self) -> dict[str, object]:
        """Field name -> value mapping (JSON-ready)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def formatted(self) -> str:
        """Fixed-width table row."""
        return (
            f"{self.spec:<14} {self.workload:<12} N={self.processors:<6} "
            f"msgs={self.messages:<6} slots={self.slots:<6} "
            f"lat={self.mean_latency:6.2f} p95={self.p95_latency:6.2f} "
            f"hops={self.mean_hops:5.2f} thr={self.throughput:6.3f} "
            f"util={self.coupler_utilization:5.3f}"
        )

    @staticmethod
    def header() -> str:
        """Column legend, aligned with :meth:`formatted` field widths."""
        return (
            f"{'spec':<14} {'workload':<12} {'N':<8} {'msgs':<11} "
            f"{'slots':<12} {'lat':<10} {'p95':<10} {'hops':<10} "
            f"{'thr':<10} util"
        )


@dataclass(frozen=True)
class SweepResult:
    """The structured result table of one :func:`sweep` call."""

    cells: tuple[SweepCell, ...]

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def cell(self, spec, workload: str) -> SweepCell:
        """The cell for ``(spec, workload)``; raises ``KeyError`` if absent."""
        key = str(NetworkSpec.parse(spec))
        for c in self.cells:
            if c.spec == key and c.workload == workload:
                return c
        raise KeyError(f"no sweep cell for ({key}, {workload})")

    def as_dicts(self) -> list[dict[str, object]]:
        """All cells as plain dicts (JSON-ready)."""
        return [c.as_dict() for c in self.cells]

    def formatted(self) -> str:
        """The whole matrix as a fixed-width table."""
        return "\n".join(
            [SweepCell.header()] + [c.formatted() for c in self.cells]
        )


def sweep(
    specs,
    workloads=("uniform", "permutation"),
    *,
    messages: int = 200,
    seed: int = 0,
    policy=None,
    max_slots: int = 100_000,
    **workload_options,
) -> SweepResult:
    """Run every workload on every spec; one structured table back.

    ``specs`` is an iterable of anything :meth:`NetworkSpec.parse`
    accepts; ``workloads`` an iterable of workload names (or callables
    -- named by their ``__name__``).  Cells appear in spec-major order.

    >>> result = sweep(["pops(4,2)", "sk(2,2,2)"], ["uniform"], messages=40)
    >>> len(result)
    2
    >>> result.cell("pops(4,2)", "uniform").messages
    40
    """
    from ..simulation.network_sim import run_traffic
    from .workloads import resolve_workload

    parsed = [NetworkSpec.parse(s) for s in specs]
    workloads = list(workloads)
    names = [
        w if isinstance(w, str) else getattr(w, "__name__", repr(w))
        for w in workloads
    ]
    cells = []
    for spec in parsed:
        # Build once per spec; each cell gets a fresh simulator over it.
        family = get_family(spec.family)
        net = spec.build()
        for wname, w in zip(names, workloads):
            traffic = resolve_workload(
                w, net, messages=messages, seed=seed, **workload_options
            )
            report = run_traffic(
                family.simulator(net, policy), traffic, max_slots=max_slots
            )
            cells.append(
                SweepCell(
                    spec=spec.canonical(),
                    workload=wname,
                    processors=net.num_processors,
                    messages=report.num_messages,
                    slots=report.slots,
                    mean_latency=report.mean_latency,
                    p95_latency=report.p95_latency,
                    max_latency=report.max_latency,
                    mean_hops=report.mean_hops,
                    throughput=report.throughput,
                    coupler_utilization=report.coupler_utilization,
                )
            )
    return SweepResult(tuple(cells))
