"""The package facade: spec in, result out.

Ten verbs cover the paper's whole pipeline for every registered
family, with a :class:`~repro.core.spec.NetworkSpec` (or anything
parseable into one) naming the machine:

* :func:`build` -- the network object;
* :func:`route` -- a hop-by-hop route in optical-design coordinates;
* :func:`simulate` -- run a named workload, get a
  :class:`~repro.simulation.metrics.SimulationReport`;
* :func:`design` -- the verifiable OTIS optical design with its BOM;
* :func:`describe` -- a JSON-ready shape summary;
* :func:`sweep` -- a specs x workloads result matrix in one call;
* :func:`degrade` -- the network with an injected fault scenario, as a
  :class:`~repro.resilience.degrade.DegradedNetwork`;
* :func:`resilience_sweep` -- Monte-Carlo survivability quantiles
  under seeded fault models, parallel and worker-count deterministic;
* :func:`temporal_sweep` -- replay seeded failure/repair *processes*
  over slot time: availability-over-time, repair-aware survivability,
  mean-time-to-disconnect, delivery under churn;
* :func:`design_search` -- enumerate, price and sweep candidate
  designs across families; ranked survivability-per-cost report with
  a Pareto front;
* :func:`experiment` -- declare a specs x fault-models x metrics x
  trials grid, execute it as one pooled schedule, get a structured
  :class:`~repro.core.experiment.ExperimentResult`.

Every verb is a thin wrapper over the shared *default session*
(:func:`repro.core.session.default_session`): repeated calls against
the same spec reuse the session's build cache and persistent worker
pools, while staying byte-identical to a cold run.  Hold your own
:class:`~repro.core.session.Session` for explicit cache/pool control.

>>> import repro
>>> repro.build("sk(6,3,2)").num_processors
72
>>> repro.route("pops(4,2)", 0, 7).num_hops
1
>>> repro.design("sk(6,3,2)").verify()
True
>>> repro.simulate("sk(2,2,2)", messages=40).num_messages
40
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

from .session import default_session
from .spec import NetworkSpec

__all__ = [
    "build",
    "route",
    "simulate",
    "design",
    "describe",
    "sweep",
    "degrade",
    "resilience_sweep",
    "temporal_sweep",
    "design_search",
    "experiment",
    "SweepCell",
    "SweepResult",
]


def build(spec) -> object:
    """Build the network instance named by ``spec``.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        Anything :meth:`~repro.core.spec.NetworkSpec.parse` accepts: a
        spec object, a canonical string (``"sk(6,3,2)"``), a loose
        token string (``"sk 6 3 2"``), a dict of named parameters, or
        an argv-style token list.

    Returns
    -------
    Network
        The built network of the spec's registered family.  It
        implements the :class:`~repro.core.protocols.Network`
        protocol: ``num_processors``, ``num_groups``,
        ``num_couplers``, ``coupler_degree``, ``processor_degree``,
        ``diameter``, ``label_of``, ``hop_distance`` and
        ``hypergraph_model``.

    Examples
    --------
    >>> build("sk(6,3,2)").num_processors
    72
    >>> build({"family": "pops", "t": 4, "g": 2}).num_groups
    2
    """
    return default_session().build(spec)


def design(spec) -> object:
    """Build the full optical design named by ``spec``.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        The machine to design; see :func:`build` for accepted forms.

    Returns
    -------
    design
        The family's optical design object.  Every design exposes
        ``verify()`` (checks each light path realizes exactly one
        stack-graph hyperarc), ``bill_of_materials()`` and
        ``worst_case_power_budget()``.

    Examples
    --------
    >>> design("sk(6,3,2)").verify()
    True
    >>> design("pops(4,2)").bill_of_materials().couplers
    4
    """
    return default_session().design(spec)


def route(spec, src: int, dst: int):
    """Route processor ``src -> dst`` on the network named by ``spec``.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        The machine to route on; see :func:`build` for accepted forms.
    src, dst : int
        Flat processor ids in ``[0, num_processors)``.

    Returns
    -------
    StackRoute
        A :class:`~repro.routing.stack_routing.StackRoute` whose hops
        carry ``(group, mux)`` coupler ids and transmitter ports in
        the optical design's coordinates, for every family.

    Raises
    ------
    IndexError
        If ``src`` or ``dst`` is outside ``[0, num_processors)``.

    Examples
    --------
    >>> route("sk(6,3,2)", 0, 71).num_hops
    1
    >>> route("pops(4,2)", 0, 0).num_hops
    0
    """
    return default_session().route(spec, src, dst)


def simulate(
    spec,
    workload="uniform",
    *,
    messages: int = 200,
    seed: int = 0,
    policy=None,
    max_slots: int = 100_000,
    **workload_options,
):
    """Run ``workload`` on the network named by ``spec``.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        The machine to simulate; see :func:`build` for accepted forms.
    workload : str, callable, or list, optional
        A registered workload name (see
        :func:`repro.core.workloads.workload_names`), a callable
        generator, or an explicit list of ``(src, dst, slot)``
        triples.  Default ``"uniform"``.
    messages : int, optional
        Number of messages to generate (default 200).
    seed : int, optional
        Traffic-generator seed (default 0).
    policy : optional
        Arbitration policy passed to the family's simulator.
    max_slots : int, optional
        Hard stop for the slotted engine (default 100000).
    **workload_options
        Extra keyword arguments forwarded to the workload generator.

    Returns
    -------
    SimulationReport
        The :class:`~repro.simulation.metrics.SimulationReport` with
        latency/throughput/utilization statistics.

    Examples
    --------
    >>> simulate("sk(2,2,2)", messages=40).num_messages
    40
    >>> simulate("pops(2,2)", "permutation", messages=8).delivery_ratio
    1.0
    """
    return default_session().simulate(
        spec,
        workload,
        messages=messages,
        seed=seed,
        policy=policy,
        max_slots=max_slots,
        **workload_options,
    )


def describe(spec) -> dict[str, object]:
    """Summarize the shape of the network named by ``spec``.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        The machine to describe; see :func:`build` for accepted forms.

    Returns
    -------
    dict
        JSON-ready mapping with keys ``spec``, ``family``, ``params``,
        ``processors``, ``groups``, ``couplers``, ``coupler_degree``,
        ``processor_degree`` and ``diameter`` (the key set the CLI's
        ``describe --json`` pins).

    Examples
    --------
    >>> describe("pops(4,2)")["processors"]
    8
    >>> describe("sk(6,3,2)")["diameter"]
    2
    """
    return default_session().describe(spec)


def degrade(
    spec, *, model="coupler", faults: int | None = None, seed: int = 0, scenario=None
):
    """Apply a fault scenario to the network named by ``spec``.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        The machine to break; see :func:`build` for accepted forms.
    model : str or FaultModel, optional
        A registered fault-model key (``"coupler"``, ``"processor"``,
        ``"link"``, ``"adversarial"``, ``"group"``) -- which takes
        intensity ``faults`` (default 1) -- or a
        :class:`~repro.resilience.faults.FaultModel` instance, which
        already carries its intensity (combining it with ``faults``
        is an error).
    faults : int, optional
        Fault intensity for string model keys.
    seed : int, optional
        Scenario seed; the same ``(model, spec, seed)`` reproduces
        the same faults.
    scenario : FaultScenario, optional
        An explicit scenario to replay instead of drawing one.

    Returns
    -------
    DegradedNetwork
        The :class:`~repro.resilience.degrade.DegradedNetwork` view:
        surviving digraph/hypergraph, degraded-mode routing and a
        fault-aware simulator.

    Examples
    --------
    >>> deg = degrade("sk(2,2,2)", model="coupler", faults=1, seed=3)
    >>> len(deg.dead_couplers)
    1
    >>> degrade("pops(2,2)", faults=0).simulate(messages=6).delivery_ratio
    1.0
    """
    return default_session().degrade(
        spec, model=model, faults=faults, seed=seed, scenario=scenario
    )


def resilience_sweep(
    spec,
    *,
    model="coupler",
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    workload: str = "uniform",
    messages: int = 60,
    bound: int | None = None,
    max_slots: int = 100_000,
    metrics: str = "full",
    backend: str = "batched",
    ci_target: float | None = None,
    sampling: str = "uniform",
):
    """Monte-Carlo survivability sweep of ``spec`` under ``model``.

    Fans ``trials`` seeded fault scenarios (optionally across
    ``workers`` processes -- the aggregate is worker-count
    independent) and aggregates per-trial survivability rows into
    quantile summaries.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        The machine to sweep; see :func:`build` for accepted forms.
    model : str or FaultModel, optional
        Fault model key or instance (see :func:`degrade`).
    faults : int, optional
        Faults injected per trial for string model keys (default 1);
        combining it with a :class:`FaultModel` instance is an error.
    trials : int, optional
        Number of Monte-Carlo trials (default 100).
    seed : int, optional
        Sweep seed; per-trial seeds derive from it via SHA-256, so
        the result is byte-identical for any worker count.
    workers : int, optional
        ``multiprocessing`` processes; ``None``/``0``/``1`` runs
        inline.
    workload : str, optional
        Workload scored per trial in ``full`` mode (default
        ``"uniform"``).
    messages : int, optional
        Messages per trial in ``full`` mode (default 60).
    bound : int, optional
        Path-length bound; default ``diameter + 2`` (the paper's
        ``k + 2`` generalized).
    max_slots : int, optional
        Hard stop for each trial's simulation (default 100000).
    metrics : {"full", "paths", "connectivity"}, optional
        Scoring depth: ``"full"`` (everything, including the degraded
        slotted simulation), ``"paths"`` (connectivity + route
        quality), or ``"connectivity"`` (reachability only -- the
        fast path).
    backend : {"batched", "vectorized", "legacy"}, optional
        Trial executor: ``"batched"`` (default; one built network per
        process), ``"vectorized"`` (shared-memory topology arrays +
        numpy trial batches; ``connectivity`` metrics only,
        byte-identical to ``batched``) or ``"legacy"`` (the
        rebuild-per-trial reference path, ``full`` metrics only).
    ci_target : float, optional
        Sequential-stopping target: run deterministic trial waves
        until the 95% confidence interval on the survival probability
        has half-width at most ``ci_target`` (or ``trials`` -- the cap
        -- is exhausted).  The summary's ``adaptive`` block then
        reports ``trials_spent`` vs ``trials_requested`` and the final
        CI.  Must be > 0; default ``None`` runs the fixed trial count.
    sampling : {"uniform", "stratified", "importance"}, optional
        Trial-allocation strategy.  ``"stratified"`` splits trials
        across fault-cardinality strata with a mass-reweighted
        unbiased estimator; ``"importance"`` biases draws toward the
        rare high-fault tail and reweights by exact likelihood ratio.
        Both need a fault model with a known cardinality distribution
        (``coupler``, ``processor`` or ``bernoulli``) and keep results
        byte-identical at any worker count.

    Returns
    -------
    SweepSummary
        The quantile :class:`~repro.resilience.sweep.SweepSummary`;
        its ``to_json()`` is byte-identical for the same seed across
        worker counts and overlapping backends.

    Examples
    --------
    >>> s = resilience_sweep("pops(2,2)", faults=1, trials=3, messages=6)
    >>> 0.0 <= s.quantiles["delivery_ratio"]["p50"] <= 1.0
    True
    >>> fast = resilience_sweep("sk(2,2,2)", trials=4,
    ...                         metrics="connectivity", backend="vectorized")
    >>> sorted(fast.quantiles)
    ['alive_connectivity', 'connectivity', 'reachable_groups']
    """
    return default_session().resilience_sweep(
        spec,
        model=model,
        faults=faults,
        trials=trials,
        seed=seed,
        workers=workers,
        workload=workload,
        messages=messages,
        bound=bound,
        max_slots=max_slots,
        metrics=metrics,
        backend=backend,
        ci_target=ci_target,
        sampling=sampling,
    )


def temporal_sweep(
    spec,
    *,
    process="coupler-renewal",
    faults: int | None = None,
    mtbf: float | None = None,
    mttr: float | None = None,
    law: str | None = None,
    horizon: int | None = None,
    trials: int = 20,
    seed: int = 0,
    workers: int | None = None,
    workload="uniform",
    messages: int = 60,
    bound: int | None = None,
    metrics: str = "connectivity",
    curve_points: int = 16,
    traffic=None,
):
    """Replay a failure/repair *process* over slot time on ``spec``.

    Where :func:`resilience_sweep` scores frozen one-shot fault
    scenarios, this verb compiles per-component MTBF/MTTR renewal
    processes into deterministic per-slot event traces (one per
    trial, seeded through the same SHA-256 stream discipline) and
    replays each trace against the connectivity/paths kernels between
    events -- and, in ``full`` mode, against the slotted simulator
    with the degraded view swapping at event boundaries.

    Parameters
    ----------
    spec : NetworkSpec, str, dict, or sequence
        The machine to churn; see :func:`build` for accepted forms.
    process : str or FaultProcess, optional
        Fault-process key (``"coupler-renewal"``,
        ``"processor-renewal"``, ``"cascade"``) or a
        :class:`~repro.temporal.processes.FaultProcess` instance.
    faults : int, optional
        Churning components for string process keys (default 1);
        combining it with a process instance is an error.  A machine
        whose :meth:`max_faults` capacity is below this is *skipped*
        (``skipped_underfaulted``), never scored immune.
    mtbf, mttr : float, optional
        Mean slots between failures / to repair (defaults 400 / 100)
        for string process keys.
    law : {"exponential", "deterministic"}, optional
        Inter-event law (default ``"exponential"``, the 2-state
        Markov process).
    horizon : int, optional
        Replay length in slots (default 1000).
    trials : int, optional
        Independent trace replays (default 20).
    seed : int, optional
        Sweep seed; per-trial traces derive from it via SHA-256, so
        the summary is byte-identical for any worker count.
    workers : int, optional
        ``multiprocessing`` processes; ``None``/``0``/``1`` runs
        inline.
    workload : str, callable or TrafficMatrix, optional
        Traffic injected in ``full`` mode (default ``"uniform"``).  A
        :class:`~repro.temporal.traffic.TrafficMatrix` is accepted
        anywhere a workload is.
    messages : int, optional
        Messages injected per trial in ``full`` mode (default 60).
    bound : int, optional
        Path-length bound for ``paths``/``full`` metrics; default
        ``diameter + 2``.
    metrics : {"connectivity", "paths", "full"}, optional
        Scoring depth per trace segment: reachability only (default),
        plus time-weighted bounded-path quality, or everything
        including the churned slotted run.
    curve_points : int, optional
        Bins of the availability-over-time curve (default 16).
    traffic : TrafficMatrix, optional
        Demand matrix scored alongside: adds the time-weighted
        ``demand_served`` quantile (rate fraction still routable).

    Returns
    -------
    TemporalSummary
        The :class:`~repro.temporal.replay.TemporalSummary`:
        availability / survivability / time-to-disconnect quantiles,
        the mean availability-over-time curve, and
        ``disconnected_fraction``.  Its ``to_json()`` is
        byte-identical for the same seed at any worker count.

    Examples
    --------
    >>> s = temporal_sweep("sk(2,2,2)", faults=2, mtbf=60, mttr=20,
    ...                    trials=4, horizon=200, seed=1)
    >>> s.trials
    4
    >>> 0.0 <= s.quantiles["availability"]["mean"] <= 1.0
    True
    """
    return default_session().temporal_sweep(
        spec,
        process=process,
        faults=faults,
        mtbf=mtbf,
        mttr=mttr,
        law=law,
        horizon=horizon,
        trials=trials,
        seed=seed,
        workers=workers,
        workload=workload,
        messages=messages,
        bound=bound,
        metrics=metrics,
        curve_points=curve_points,
        traffic=traffic,
    )


def design_search(
    *,
    max_processors: int,
    min_processors: int = 2,
    families=None,
    model="coupler",
    faults: int | None = None,
    trials: int = 100,
    seed: int = 0,
    workers: int | None = None,
    metrics: str = "connectivity",
    workload: str = "uniform",
    messages: int = 60,
    cost_model=None,
    max_coupler_degree: int | None = None,
    min_groups: int | None = None,
    max_groups: int | None = None,
    max_diameter: int | None = None,
    min_margin_db: float | None = None,
    top: int | None = None,
    parallelism: str = "sweeps",
    backend: str = "batched",
    rank_by: str = "survivability-per-cost",
    ci_target: float | None = None,
    sampling: str = "uniform",
):
    """Resilience-aware design search over every registered family.

    Enumerates candidate specs in the processor window, prices each
    design's bill of materials, runs one seeded survivability sweep
    per candidate, and ranks by survivability per 1000 cost units
    with the (cost, survivability, diameter) Pareto front marked.
    Candidates too small to absorb ``faults`` are skipped (and listed
    in ``skipped_underfaulted``) rather than scored as immune.

    Parameters
    ----------
    max_processors, min_processors : int
        Candidate window: every buildable spec with
        ``min_processors <= N <= max_processors`` is considered.
    families : iterable of str, optional
        Family keys to search (default: all registered).
    model : str or FaultModel, optional
        Fault model key (taking intensity ``faults``, default 1) or a
        :class:`~repro.resilience.faults.FaultModel` instance carrying
        its own.
    faults : int, optional
        Faults injected per trial for string model keys.
    trials, seed : int, optional
        Monte-Carlo trials per candidate and the sweep seed.
    workers : int, optional
        ``multiprocessing`` processes for the sweeps.
    metrics : {"connectivity", "paths", "full"}, optional
        Scoring depth per trial (``"connectivity"`` is the fast
        path and the default).
    workload, messages : optional
        Traffic per trial when ``metrics="full"``.
    cost_model : CostModel, optional
        Unit prices for the bill of materials (default
        :data:`~repro.design_search.costing.DEFAULT_COST_MODEL`).
    max_coupler_degree, min_groups, max_groups, max_diameter : int, optional
        Shape windows; ``min_groups=2`` excludes the degenerate
        single-star machines.
    min_margin_db : float, optional
        Drop designs whose optical link margin is below this.
    top : int, optional
        Truncate the report to the best ``top`` candidates after
        ranking (the Pareto front is computed over the full set
        first).
    parallelism : {"sweeps", "candidates"}, optional
        ``"sweeps"`` (default) opens one pool per candidate sweep;
        ``"candidates"`` schedules every candidate's trial batches
        onto one shared pool.  The ranked table is identical.
    backend : {"batched", "vectorized", "legacy"}, optional
        Trial executor for the per-candidate sweeps.
    rank_by : {"survivability-per-cost", "within-bound", "mean-stretch"}, optional
        Ranking criterion for the candidate table.  The path-metric
        rankings need ``metrics="paths"`` or ``"full"``.
    ci_target : float, optional
        Sequential stopping per candidate sweep (see
        :func:`resilience_sweep`); under the default ranking it also
        arms early discard -- a candidate's sweep ends as soon as its
        confidence interval can no longer overlap the current
        leader's.  Needs ``parallelism="sweeps"``.
    sampling : {"uniform", "stratified", "importance"}, optional
        Trial-allocation strategy for every candidate sweep (see
        :func:`resilience_sweep`).

    Returns
    -------
    DesignSearchResult
        The ranked
        :class:`~repro.design_search.search.DesignSearchResult`.
        Deterministic: same parameters and seed give byte-identical
        ``to_json()`` output for any ``workers``, ``parallelism`` and
        overlapping ``backend``.

    Examples
    --------
    >>> r = design_search(max_processors=8, families=("pops",), trials=4)
    >>> len(r) >= 1
    True
    >>> r.best().spec == r.candidates[0].spec
    True
    """
    return default_session().design_search(
        max_processors=max_processors,
        min_processors=min_processors,
        families=families,
        model=model,
        faults=faults,
        trials=trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        workload=workload,
        messages=messages,
        cost_model=cost_model,
        max_coupler_degree=max_coupler_degree,
        min_groups=min_groups,
        max_groups=max_groups,
        max_diameter=max_diameter,
        min_margin_db=min_margin_db,
        top=top,
        parallelism=parallelism,
        backend=backend,
        rank_by=rank_by,
        ci_target=ci_target,
        sampling=sampling,
    )


def experiment(
    specs,
    *,
    models=("coupler",),
    metrics=("connectivity",),
    trials=100,
    seed: int = 0,
    workers: int | None = None,
    backend: str = "batched",
    workload: str = "uniform",
    messages: int = 60,
    bound: int | None = None,
    max_slots: int = 100_000,
    samplings=("uniform",),
    ci_target: float | None = None,
):
    """Run a declarative specs x models x metrics x trials experiment.

    Builds an :class:`~repro.core.experiment.Experiment` plan over the
    grid, compiles it to ONE pooled sweep schedule (every cell's trial
    chunks share the session's persistent worker pool) and returns the
    structured :class:`~repro.core.experiment.ExperimentResult`.

    Parameters
    ----------
    specs : spec or iterable of specs
        The machines of the grid; each entry is anything
        :meth:`~repro.core.spec.NetworkSpec.parse` accepts.
    models : iterable, optional
        Fault-model grid entries: a key (``"coupler"``), a
        ``"key:faults"`` string (``"link:2"``), a ``(key, faults)``
        pair or a :class:`~repro.resilience.faults.FaultModel`
        instance.  Default ``("coupler",)``.
    metrics : iterable of str, optional
        Scoring depths (``"connectivity"``, ``"paths"``, ``"full"``).
    trials : int or iterable of int, optional
        Monte-Carlo trial counts (a grid axis; default 100).
    seed : int, optional
        One seed for every cell; each cell's summary is byte-identical
        to :func:`resilience_sweep` with the same parameters.
    workers : int, optional
        Worker-pool size (``None``/``0``/``1`` runs inline); the
        report is worker-count independent.
    backend : {"batched", "vectorized", "legacy"}, optional
        Preferred trial executor; cells whose metrics mode it cannot
        score fall back to ``"batched"``.
    workload, messages, bound, max_slots : optional
        Per-cell sweep parameters (see :func:`resilience_sweep`).
    samplings : str or iterable of str, optional
        Trial-allocation strategies (a grid axis; default
        ``("uniform",)``; see :func:`resilience_sweep`).
    ci_target : float, optional
        Sequential-stopping half-width target applied to every cell
        (see :func:`resilience_sweep`); default ``None`` runs fixed
        trial counts.

    Returns
    -------
    ExperimentResult
        Grid-ordered cells with ``as_dicts()`` / ``to_json()`` /
        ``formatted()``; ``to_json()`` is deterministic for the same
        plan and seed.

    Examples
    --------
    >>> r = experiment(["pops(2,2)", "sk(2,2,2)"], models=["coupler:1"],
    ...                trials=4)
    >>> len(r)
    2
    >>> r.cell("pops(2,2)").summary.trials
    4
    """
    return default_session().experiment(
        specs,
        models=models,
        metrics=metrics,
        trials=trials,
        seed=seed,
        workers=workers,
        backend=backend,
        workload=workload,
        messages=messages,
        bound=bound,
        max_slots=max_slots,
        samplings=samplings,
        ci_target=ci_target,
    )


# ----------------------------------------------------------------------
# Sweep: the scenario matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One (spec, workload) cell of a sweep, flattened for tabulation."""

    spec: str
    workload: str
    processors: int
    messages: int
    slots: int
    mean_latency: float
    p95_latency: float
    max_latency: int
    mean_hops: float
    throughput: float
    coupler_utilization: float

    def as_dict(self) -> dict[str, object]:
        """Field name -> value mapping (JSON-ready)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def formatted(self) -> str:
        """Fixed-width table row."""
        return (
            f"{self.spec:<14} {self.workload:<12} N={self.processors:<6} "
            f"msgs={self.messages:<6} slots={self.slots:<6} "
            f"lat={self.mean_latency:6.2f} p95={self.p95_latency:6.2f} "
            f"hops={self.mean_hops:5.2f} thr={self.throughput:6.3f} "
            f"util={self.coupler_utilization:5.3f}"
        )

    @staticmethod
    def header() -> str:
        """Column legend, aligned with :meth:`formatted` field widths."""
        return (
            f"{'spec':<14} {'workload':<12} {'N':<8} {'msgs':<11} "
            f"{'slots':<12} {'lat':<10} {'p95':<10} {'hops':<10} "
            f"{'thr':<10} util"
        )


@dataclass(frozen=True)
class SweepResult:
    """The structured result table of one :func:`sweep` call."""

    cells: tuple[SweepCell, ...]

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def cell(self, spec, workload: str) -> SweepCell:
        """The cell for ``(spec, workload)``; raises ``KeyError`` if absent."""
        key = str(NetworkSpec.parse(spec))
        for c in self.cells:
            if c.spec == key and c.workload == workload:
                return c
        raise KeyError(f"no sweep cell for ({key}, {workload})")

    def as_dicts(self) -> list[dict[str, object]]:
        """All cells as plain dicts (JSON-ready)."""
        return [c.as_dict() for c in self.cells]

    def to_json(self) -> str:
        """The cell list as canonical JSON (2-space indent).

        Exactly the payload ``python -m repro sweep ... --json``
        prints, so library and CLI consumers share one schema (pinned
        by the golden CLI tests).
        """
        return json.dumps(self.as_dicts(), indent=2)

    def formatted(self) -> str:
        """The whole matrix as a fixed-width table."""
        return "\n".join(
            [SweepCell.header()] + [c.formatted() for c in self.cells]
        )


def sweep(
    specs,
    workloads=("uniform", "permutation"),
    *,
    messages: int = 200,
    seed: int = 0,
    policy=None,
    max_slots: int = 100_000,
    **workload_options,
) -> SweepResult:
    """Run every workload on every spec; one structured table back.

    Parameters
    ----------
    specs : iterable
        Anything :meth:`~repro.core.spec.NetworkSpec.parse` accepts,
        one entry per machine.
    workloads : iterable of str or callable, optional
        Workload names (or callables, named by their ``__name__``)
        forming the matrix columns.  Default
        ``("uniform", "permutation")``.
    messages, seed, policy, max_slots, **workload_options
        Forwarded to :func:`simulate` for every cell.

    Returns
    -------
    SweepResult
        The :class:`SweepResult` matrix; cells appear in spec-major
        order.

    Examples
    --------
    >>> result = sweep(["pops(4,2)", "sk(2,2,2)"], ["uniform"], messages=40)
    >>> len(result)
    2
    >>> result.cell("pops(4,2)", "uniform").messages
    40
    """
    return default_session().sweep(
        specs,
        workloads,
        messages=messages,
        seed=seed,
        policy=policy,
        max_slots=max_slots,
        **workload_options,
    )
