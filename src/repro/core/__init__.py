"""Core subsystem: specs, the family registry, and the facade.

This package is the front door of :mod:`repro`.  One
:class:`NetworkSpec` names any network (``"sk(6,3,2)"``,
``"pops(4,2)"``, ``"sii(4,3,10)"``, ``"sops(8)"``); the registry maps
each family key to a :class:`NetworkFamily` descriptor bundling
constructor, router, simulator, optical design, degraded-mode router
(``fault_route``) and equal-``N`` enumerator; and the facade verbs
(:func:`build`, :func:`route`, :func:`simulate`, :func:`design`,
:func:`sweep`, :func:`degrade`, :func:`resilience_sweep`) drive any
registered family end to end without per-family dispatch anywhere
downstream.  The resilience verbs apply seeded fault scenarios from
:mod:`repro.resilience` and measure what survives.
"""

from .cache import CacheEntry, CacheStats, SpecCache
from .experiment import Experiment, ExperimentCell, ExperimentResult
from .facade import (
    SweepCell,
    SweepResult,
    build,
    degrade,
    describe,
    design,
    design_search,
    experiment,
    resilience_sweep,
    route,
    simulate,
    sweep,
    temporal_sweep,
)
from .protocols import Network
from .session import Session, default_session, reset_default_session
from .registry import (
    NetworkFamily,
    family_for_network,
    family_keys,
    get_family,
    iter_families,
    register_family,
)
from .spec import NetworkSpec, Param, SpecError
from .workloads import get_workload, register_workload, workload_names

__all__ = [
    "CacheEntry",
    "CacheStats",
    "Experiment",
    "ExperimentCell",
    "ExperimentResult",
    "Network",
    "NetworkFamily",
    "NetworkSpec",
    "Param",
    "Session",
    "SpecCache",
    "SpecError",
    "SweepCell",
    "SweepResult",
    "build",
    "default_session",
    "degrade",
    "describe",
    "design",
    "design_search",
    "experiment",
    "family_for_network",
    "family_keys",
    "get_family",
    "get_workload",
    "iter_families",
    "register_family",
    "register_workload",
    "reset_default_session",
    "resilience_sweep",
    "route",
    "simulate",
    "sweep",
    "temporal_sweep",
    "workload_names",
]
