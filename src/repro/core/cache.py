"""Spec-keyed build caches for long-lived sessions.

Every facade verb used to re-parse its spec, rebuild the network and
recompute derived views on every call.  A :class:`SpecCache` keeps one
:class:`CacheEntry` per canonical spec string -- the built network plus
lazily-computed expensive views (the optical design, the vectorized
sweep's topology arrays, BFS routing tables, intact-baseline
simulation metrics) -- under an LRU bound with explicit
:meth:`~SpecCache.invalidate`.  :class:`~repro.core.session.Session`
owns one; the module-level facade verbs share the default session's.

Determinism note: everything cached here is a pure function of the
canonical spec (networks are frozen after construction), so a cache
hit returns byte-identical results to a cold rebuild -- caching is a
latency optimization, never a semantic one.

Thread safety: get-or-build (:meth:`~SpecCache.entry`), invalidation,
the candidate-window memo and the stats snapshot all serialize on one
internal lock, so a cache shared by server worker threads never builds
a spec twice concurrently and never tears an LRU update.  The views
hanging off a :class:`CacheEntry` (design, arrays, routing table,
baselines) materialize outside that lock; racing threads may build one
view twice, but both builds are pure functions of the spec, so either
result is correct and one simply wins.

>>> cache = SpecCache(maxsize=2)
>>> cache.network("pops(2,2)") is cache.network("pops(2,2)")
True
>>> cache.stats.hits, cache.stats.misses
(1, 1)
>>> _ = cache.network("sops(4)"); _ = cache.network("sk(2,2,2)")
>>> "pops(2,2)" in cache  # evicted: LRU bound is 2
False
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs.metrics import REGISTRY
from ..obs.trace import span
from .spec import NetworkSpec

_CACHE_OPS_HELP = "Spec-cache lookups by outcome"

#: The ``_TopologyArrays`` fields round-tripped through a spill file.
_SPILL_ARRAYS = (
    "endpoints",
    "proc_group",
    "src_indptr",
    "src_indices",
    "tgt_indptr",
    "tgt_indices",
)
_SPILL_SCALARS = ("num_processors", "num_groups", "num_couplers")

__all__ = ["CacheEntry", "CacheStats", "SpecCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`SpecCache`.

    ``candidate_hits``/``candidate_misses`` count the design-search
    candidate-window memo (:meth:`SpecCache.candidate_specs`), kept
    separate from the spec-entry counters so a warm search window
    never masquerades as build-cache traffic.
    ``spills``/``spill_hits``/``spill_misses`` count the topology-array
    disk spill: arrays written on LRU eviction, arrays reloaded from
    disk on a later rebuild, and rebuilds that consulted the spill
    store and found nothing.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    candidate_hits: int = 0
    candidate_misses: int = 0
    spills: int = 0
    spill_hits: int = 0
    spill_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-ready counter view."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "candidate_hits": self.candidate_hits,
            "candidate_misses": self.candidate_misses,
            "spills": self.spills,
            "spill_hits": self.spill_hits,
            "spill_misses": self.spill_misses,
        }


class CacheEntry:
    """One cached spec: the built network plus lazy derived views.

    The network is built eagerly (an entry that exists is an entry
    that builds); the expensive derived views -- optical design,
    vectorized topology arrays, the BFS routing table and per-workload
    intact baselines -- materialize on first use and stick to the
    entry for its cache lifetime.
    """

    __slots__ = (
        "spec", "network", "_design", "_arrays", "_table", "_baselines",
        "_spill",
    )

    def __init__(self, spec: NetworkSpec) -> None:
        self.spec = spec
        self.network = spec.build()
        self._design = None
        self._arrays = None
        self._table = None
        self._baselines: dict[tuple, float] = {}
        #: optional spill-store lookup (canonical -> arrays or None),
        #: wired by the owning SpecCache
        self._spill = None

    @property
    def canonical(self) -> str:
        """The entry's cache key, ``family(p1,p2,...)``."""
        return self.spec.canonical()

    def design(self):
        """The spec's optical design, built once."""
        if self._design is None:
            self._design = self.spec.design()
        return self._design

    def arrays(self):
        """The vectorized sweep backend's flat topology arrays.

        One :class:`~repro.resilience.sweep._TopologyArrays` export per
        entry; repeated vectorized sweeps on the same spec skip the
        re-export entirely.  An entry rebuilt after LRU eviction first
        consults its cache's disk-spill store -- a reload is cheaper
        than the CSR re-export and byte-identical to it.
        """
        if self._arrays is None:
            if self._spill is not None:
                self._arrays = self._spill(self.canonical)
        if self._arrays is None:
            from ..resilience.sweep import _TopologyArrays

            self._arrays = _TopologyArrays.from_network(self.network)
        return self._arrays

    def routing_table(self):
        """The all-pairs BFS next-hop table over the group digraph.

        Uses the network's base digraph when it has one (stack
        families, POPS); single-OPS machines get the group digraph
        derived from their coupler endpoints.
        """
        if self._table is None:
            from ..routing.tables import build_routing_table

            if hasattr(self.network, "base_graph"):
                graph = self.network.base_graph()
            else:
                from ..graphs.digraph import DiGraph
                from ..resilience.faults import coupler_endpoints

                graph = DiGraph(
                    self.network.num_groups,
                    sorted(set(coupler_endpoints(self.network))),
                )
            self._table = build_routing_table(graph)
        return self._table

    def baseline(
        self,
        *,
        workload: str = "uniform",
        messages: int = 60,
        seed: int = 0,
        max_slots: int = 100_000,
    ) -> float:
        """Intact-network mean latency for one workload configuration.

        The number ``metrics="full"`` sweeps normalize latency
        inflation against; it depends only on ``(workload, messages,
        seed, max_slots)``, so it is computed once per configuration
        per entry instead of once per sweep call.
        """
        key = (workload, messages, seed, max_slots)
        if key not in self._baselines:
            from ..resilience.sweep import _intact_baseline

            self._baselines[key] = _intact_baseline(
                self.network,
                self.spec.family,
                workload=workload,
                messages=messages,
                seed=seed,
                max_slots=max_slots,
            )
        return self._baselines[key]


class SpecCache:
    """LRU cache of :class:`CacheEntry` keyed by canonical spec string.

    ``maxsize`` bounds the number of simultaneously-held built
    networks; the least recently used entry is evicted first.
    :meth:`invalidate` drops one spec (or everything) explicitly.

    All public methods are thread-safe: get-or-build is atomic under
    an internal :class:`threading.RLock` (concurrent requests for the
    same spec build it exactly once), as are invalidation, the
    candidate-window memo and :meth:`stats_dict`.
    """

    #: Most candidate-enumeration windows memoized at once (LRU).
    CANDIDATE_MEMO = 8

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._candidates: OrderedDict[tuple, list] = OrderedDict()
        self._lock = threading.RLock()
        #: created lazily on the first spill, removed on full invalidate
        self._spill_dir: str | None = None

    # ------------------------------------------------------------------
    # Topology-array disk spill.
    # ------------------------------------------------------------------
    def _spill_path(self, key: str, *, create: bool = False) -> str | None:
        """The spill file of one canonical spec (``None``: no store yet)."""
        with self._lock:
            if self._spill_dir is None:
                if not create:
                    return None
                self._spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
            name = hashlib.sha256(key.encode("utf-8")).hexdigest()
            return os.path.join(self._spill_dir, f"{name}.npz")

    def _spill_arrays(self, key: str, arrays) -> None:
        """Write one entry's topology arrays to disk (eviction path).

        Best-effort: a full disk or missing numpy silently skips the
        spill -- the next ``arrays()`` call just re-exports from the
        rebuilt network, so correctness never depends on the store.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is baked in
            return
        path = self._spill_path(key, create=True)
        payload = {f: getattr(arrays, f) for f in _SPILL_ARRAYS}
        payload.update(
            {
                f: np.asarray(getattr(arrays, f), dtype=np.int64)
                for f in _SPILL_SCALARS
            }
        )
        try:
            np.savez(path, **payload)
        except OSError:  # pragma: no cover - disk full / unwritable tmp
            return
        with self._lock:
            self.stats.spills += 1
        REGISTRY.counter(
            "repro_cache_ops_total", _CACHE_OPS_HELP, {"outcome": "spill"}
        ).inc()

    def _load_spilled(self, key: str):
        """Reload spilled topology arrays for ``key`` (``None``: rebuild).

        Only consulted once a spill store exists; a consult that finds
        no file (or an unreadable one) counts as ``spill_misses`` and
        falls back to the CSR export.
        """
        path = self._spill_path(key)
        if path is None:
            return None
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is baked in
            return None
        from ..resilience.sweep import _TopologyArrays

        try:
            with np.load(path) as data:
                arrays = _TopologyArrays(
                    **{f: int(data[f]) for f in _SPILL_SCALARS},
                    **{f: data[f].copy() for f in _SPILL_ARRAYS},
                )
        except (OSError, KeyError, ValueError):
            with self._lock:
                self.stats.spill_misses += 1
            REGISTRY.counter(
                "repro_cache_ops_total", _CACHE_OPS_HELP,
                {"outcome": "spill_miss"},
            ).inc()
            return None
        with self._lock:
            self.stats.spill_hits += 1
        REGISTRY.counter(
            "repro_cache_ops_total", _CACHE_OPS_HELP,
            {"outcome": "spill_hit"},
        ).inc()
        return arrays

    def entry(self, spec) -> CacheEntry:
        """The (possibly fresh) entry for ``spec``; hits refresh LRU order."""
        parsed = NetworkSpec.parse(spec)
        key = parsed.canonical()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                REGISTRY.counter(
                    "repro_cache_ops_total", _CACHE_OPS_HELP,
                    {"outcome": "hit"},
                ).inc()
                return cached
            self.stats.misses += 1
            REGISTRY.counter(
                "repro_cache_ops_total", _CACHE_OPS_HELP,
                {"outcome": "miss"},
            ).inc()
            with span("cache.build", spec=key):
                fresh = CacheEntry(parsed)
            fresh._spill = self._load_spilled
            while len(self._entries) >= self.maxsize:
                evicted_key, evicted = self._entries.popitem(last=False)
                self.stats.evictions += 1
                REGISTRY.counter(
                    "repro_cache_ops_total", _CACHE_OPS_HELP,
                    {"outcome": "eviction"},
                ).inc()
                if evicted._arrays is not None:
                    self._spill_arrays(evicted_key, evicted._arrays)
            self._entries[key] = fresh
            return fresh

    def network(self, spec):
        """The built network for ``spec`` (cached)."""
        return self.entry(spec).network

    def candidate_specs(
        self,
        *,
        max_processors: int,
        min_processors: int = 2,
        families=None,
    ) -> list:
        """Memoized design-search candidate enumeration for one window.

        Same contract as
        :func:`~repro.design_search.search.enumerate_candidates`
        (which performs the actual enumeration on a miss); the result
        for a ``(families, min, max)`` window is kept under a small
        LRU so repeated searches over the same window skip the
        family-by-family size scan.  Counted separately in
        :class:`CacheStats` as ``candidate_hits``/``candidate_misses``.
        """
        key = (
            None if families is None else tuple(families),
            min_processors,
            max_processors,
        )
        with self._lock:
            cached = self._candidates.get(key)
            if cached is not None:
                self.stats.candidate_hits += 1
                self._candidates.move_to_end(key)
                return list(cached)
            self.stats.candidate_misses += 1
        from ..design_search.search import enumerate_candidates

        specs = enumerate_candidates(
            max_processors=max_processors,
            min_processors=min_processors,
            families=families,
        )
        with self._lock:
            while len(self._candidates) >= self.CANDIDATE_MEMO:
                self._candidates.popitem(last=False)
            self._candidates[key] = specs
        return list(specs)

    def invalidate(self, spec=None) -> int:
        """Drop one spec's entry (or all entries); returns the count dropped.

        Invalidation never changes results -- entries are pure
        functions of the spec -- it just releases memory and forces
        the next call to rebuild.  Dropping everything also clears the
        candidate-window memo and removes the disk-spill store.
        """
        with self._lock:
            if spec is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._candidates.clear()
                if self._spill_dir is not None:
                    shutil.rmtree(self._spill_dir, ignore_errors=True)
                    self._spill_dir = None
                return dropped
            key = NetworkSpec.parse(spec).canonical()
            path = self._spill_path(key)
            if path is not None and os.path.exists(path):
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
            return 1 if self._entries.pop(key, None) is not None else 0

    def stats_dict(self) -> dict[str, int]:
        """Atomic snapshot of the counters plus size/maxsize (JSON-ready)."""
        with self._lock:
            return {
                **self.stats.as_dict(),
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def keys(self) -> tuple[str, ...]:
        """Currently cached canonical specs, LRU-oldest first."""
        with self._lock:
            return tuple(self._entries)

    def __contains__(self, spec) -> bool:
        try:
            key = NetworkSpec.parse(spec).canonical()
        except Exception:
            return False
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
