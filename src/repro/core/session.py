"""`Session`: the long-lived engine behind every facade verb.

The module-level verbs (:func:`repro.build`, :func:`repro.simulate`,
:func:`repro.resilience_sweep`, ...) are stateless by signature but no
longer by implementation: each delegates to a shared *default session*
so repeated queries against the same machine stop paying cold-start
cost.  A :class:`Session` owns

* a **spec-keyed build cache** (:class:`~repro.core.cache.SpecCache`):
  canonical spec string -> built network plus lazily-computed views
  (optical design, vectorized topology arrays, routing tables,
  intact-baseline metrics), LRU-bounded with explicit
  :meth:`~Session.invalidate`;
* **persistent worker pools**
  (:class:`~repro.resilience.sweep.PersistentSweepExecutor`, one per
  worker count): sweeps, experiments and design searches reuse one
  lazily-started ``multiprocessing`` pool across calls, workers
  re-initializing their per-process trial context only when the sweep
  plan changes.

Caching is a latency optimization only: every session method returns
**byte-identical** output to the stateless module-level path for the
same arguments and seed, at any worker count.

>>> from repro.core.session import Session
>>> with Session() as s:
...     n1 = s.build("sk(6,3,2)")
...     n2 = s.build("sk(6,3,2)")       # cache hit: same object
...     hit = n1 is n2
>>> hit
True
"""

from __future__ import annotations

import atexit
import threading

from .cache import SpecCache
from .registry import get_family

__all__ = ["Session", "default_session", "reset_default_session"]

#: Sentinel distinguishing "caller did not pass workers" (use the
#: session default) from an explicit ``workers=None`` (run inline).
_UNSET = object()


class Session:
    """A long-lived facade engine: spec-keyed caches + persistent pools.

    Parameters
    ----------
    cache_size : int, optional
        LRU bound on simultaneously cached built networks (default
        32).
    workers : int, optional
        Default ``multiprocessing`` worker count for sweep-shaped
        calls when the call itself does not pass ``workers``
        (``None``, the default, runs inline -- exactly the module-verb
        default).

    Examples
    --------
    >>> s = Session()
    >>> s.describe("pops(4,2)")["processors"]
    8
    >>> s.resilience_sweep("pops(2,2)", trials=3,
    ...                    metrics="connectivity").trials
    3
    >>> s.close()
    """

    def __init__(self, *, cache_size: int = 32, workers: int | None = None):
        self._cache = SpecCache(maxsize=cache_size)
        self._workers = workers
        self._executors: dict[int, object] = {}
        self._executor_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def cache(self) -> SpecCache:
        """The session's spec-keyed build cache."""
        return self._cache

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size (JSON-ready).

        Includes the design-search candidate-window memo counters
        (``candidate_hits``/``candidate_misses``); the snapshot is
        taken atomically, so concurrent readers never see a torn view.
        """
        return self._cache.stats_dict()

    def invalidate(self, spec=None) -> int:
        """Drop one spec's cache entry (or all); returns the count dropped.

        Cached state is a pure function of the spec, so this only
        releases memory / forces rebuilds -- results never change.
        """
        self._check_open()
        return self._cache.invalidate(spec)

    def close(self, *, terminate: bool = False) -> None:
        """Shut down every pool and drop the cache (idempotent).

        ``terminate=True`` kills pool workers instead of draining them
        -- the signal-handler teardown path (SIGINT/SIGTERM), where
        waiting on a pool that may hold an interrupted task would hang
        or spray ``BrokenProcessPool`` noise.
        """
        self._closed = True
        with self._executor_lock:
            executors, self._executors = self._executors, {}
        for executor in executors.values():
            executor.close(terminate=terminate)
        self._cache.invalidate()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def _effective_workers(self, workers):
        return self._workers if workers is _UNSET else workers

    def _executor_for(self, workers):
        """The persistent executor for one worker count (lazily built).

        Guarded by a lock so concurrent server threads asking for the
        same worker count share ONE executor (and thus one pool)
        instead of racing two into existence.
        """
        from ..resilience.sweep import PersistentSweepExecutor

        key = workers if workers is not None and workers > 1 else 0
        with self._executor_lock:
            executor = self._executors.get(key)
            if executor is None:
                executor = PersistentSweepExecutor(workers=key or None)
                self._executors[key] = executor
            return executor

    @property
    def pools_started(self) -> int:
        """How many persistent pools currently exist (for introspection)."""
        with self._executor_lock:
            return sum(1 for e in self._executors.values() if e.pool_started)

    # ------------------------------------------------------------------
    # Light verbs: build / design / route / simulate / describe / sweep
    # ------------------------------------------------------------------
    def build(self, spec):
        """The built network for ``spec`` (see :func:`repro.build`), cached."""
        self._check_open()
        return self._cache.network(spec)

    def design(self, spec):
        """The optical design for ``spec`` (see :func:`repro.design`), cached."""
        self._check_open()
        return self._cache.entry(spec).design()

    def routing_table(self, spec):
        """The cached all-pairs BFS next-hop table over ``spec``'s base graph."""
        self._check_open()
        return self._cache.entry(spec).routing_table()

    def route(self, spec, src: int, dst: int):
        """Route ``src -> dst`` on ``spec`` (see :func:`repro.route`)."""
        self._check_open()
        entry = self._cache.entry(spec)
        net = entry.network
        n = net.num_processors
        for name, value in (("src", src), ("dst", dst)):
            if not 0 <= value < n:
                raise IndexError(
                    f"{name} processor {value} out of range [0, {n}) "
                    f"for {entry.spec}"
                )
        return get_family(entry.spec.family).route(net, src, dst)

    def simulate(
        self,
        spec,
        workload="uniform",
        *,
        messages: int = 200,
        seed: int = 0,
        policy=None,
        max_slots: int = 100_000,
        **workload_options,
    ):
        """Run ``workload`` on ``spec`` (see :func:`repro.simulate`)."""
        self._check_open()
        from ..simulation.network_sim import run_traffic
        from .workloads import resolve_workload

        entry = self._cache.entry(spec)
        net = entry.network
        traffic = resolve_workload(
            workload, net, messages=messages, seed=seed, **workload_options
        )
        sim = get_family(entry.spec.family).simulator(net, policy)
        return run_traffic(sim, traffic, max_slots=max_slots)

    def describe(self, spec) -> dict[str, object]:
        """Shape summary of ``spec`` (see :func:`repro.describe`)."""
        self._check_open()
        entry = self._cache.entry(spec)
        net = entry.network
        return {
            "spec": entry.canonical,
            "family": entry.spec.family,
            "params": entry.spec.params_dict(),
            "processors": net.num_processors,
            "groups": net.num_groups,
            "couplers": net.num_couplers,
            "coupler_degree": net.coupler_degree,
            "processor_degree": net.processor_degree,
            "diameter": net.diameter,
        }

    def sweep(
        self,
        specs,
        workloads=("uniform", "permutation"),
        *,
        messages: int = 200,
        seed: int = 0,
        policy=None,
        max_slots: int = 100_000,
        **workload_options,
    ):
        """The specs x workloads matrix (see :func:`repro.sweep`)."""
        self._check_open()
        from ..simulation.network_sim import run_traffic
        from .facade import SweepCell, SweepResult
        from .workloads import resolve_workload

        entries = [self._cache.entry(s) for s in specs]
        workloads = list(workloads)
        names = [
            w if isinstance(w, str) else getattr(w, "__name__", repr(w))
            for w in workloads
        ]
        cells = []
        for entry in entries:
            net = entry.network
            family = get_family(entry.spec.family)
            for wname, w in zip(names, workloads):
                traffic = resolve_workload(
                    w, net, messages=messages, seed=seed, **workload_options
                )
                report = run_traffic(
                    family.simulator(net, policy), traffic, max_slots=max_slots
                )
                cells.append(
                    SweepCell(
                        spec=entry.canonical,
                        workload=wname,
                        processors=net.num_processors,
                        messages=report.num_messages,
                        slots=report.slots,
                        mean_latency=report.mean_latency,
                        p95_latency=report.p95_latency,
                        max_latency=report.max_latency,
                        mean_hops=report.mean_hops,
                        throughput=report.throughput,
                        coupler_utilization=report.coupler_utilization,
                    )
                )
        return SweepResult(tuple(cells))

    # ------------------------------------------------------------------
    # Resilience verbs: degrade / resilience_sweep / design_search
    # ------------------------------------------------------------------
    def degrade(
        self,
        spec,
        *,
        model="coupler",
        faults: int | None = None,
        seed: int = 0,
        scenario=None,
    ):
        """Fault-injected view of ``spec`` (see :func:`repro.degrade`)."""
        self._check_open()
        from ..resilience.degrade import DegradedNetwork
        from ..resilience.faults import FaultModel, make_fault_model

        entry = self._cache.entry(spec)
        net = entry.network
        if scenario is None:
            if isinstance(model, str):
                model = make_fault_model(model, 1 if faults is None else faults)
            elif not isinstance(model, FaultModel):
                raise TypeError(
                    f"model must be a fault-model key or FaultModel, "
                    f"got {type(model).__name__}"
                )
            elif faults is not None:
                raise ValueError(
                    "faults applies to string model keys; a FaultModel "
                    "instance already carries its intensity"
                )
            scenario = model.scenario(entry.canonical, net, seed)
        return DegradedNetwork(net, scenario)

    def resilience_sweep(
        self,
        spec,
        *,
        model="coupler",
        faults: int | None = None,
        trials: int = 100,
        seed: int = 0,
        workers=_UNSET,
        workload: str = "uniform",
        messages: int = 60,
        bound: int | None = None,
        max_slots: int = 100_000,
        metrics: str = "full",
        backend: str = "batched",
        ci_target: float | None = None,
        sampling: str = "uniform",
    ):
        """Monte-Carlo survivability sweep (see :func:`repro.resilience_sweep`).

        Warm calls reuse the cached built network, topology arrays,
        intact baseline and the persistent worker pool; the summary is
        byte-identical to a cold module-level
        :func:`~repro.resilience.sweep.survivability_sweep`.
        """
        self._check_open()
        from ..obs.trace import span
        from ..resilience.adaptive import run_adaptive
        from ..resilience.sweep import _prepare_sweep, _summarize

        entry = self._cache.entry(spec)
        # lazy provider: _prepare_sweep only invokes it once the
        # request validates, so rejected requests never simulate
        baseline = (
            lambda: entry.baseline(
                workload=workload,
                messages=messages,
                seed=seed,
                max_slots=max_slots,
            )
        ) if metrics == "full" else None
        with span("sweep.prepare", spec=entry.canonical, trials=trials,
                  backend=backend):
            prepared = _prepare_sweep(
                entry.spec,
                model,
                faults=faults,
                trials=trials,
                seed=seed,
                workload=workload,
                messages=messages,
                bound=bound,
                max_slots=max_slots,
                metrics=metrics,
                backend=backend,
                ci_target=ci_target,
                sampling=sampling,
                _net=entry.network,
                _baseline=baseline,
            )
        executor = self._executor_for(self._effective_workers(workers))
        arrays = (
            entry.arrays()
            if backend == "vectorized" and not executor.parallel
            else None
        )
        with span("sweep.execute", spec=entry.canonical, trials=trials,
                  backend=backend):
            if prepared.ci_target is not None:
                rows = run_adaptive(prepared, executor, arrays=arrays)
            else:
                rows = executor.run(prepared, arrays=arrays)
        with span("sweep.summarize", spec=entry.canonical, trials=trials):
            return _summarize(prepared, rows)

    def temporal_sweep(
        self,
        spec,
        *,
        process="coupler-renewal",
        faults: int | None = None,
        mtbf: float | None = None,
        mttr: float | None = None,
        law: str | None = None,
        horizon: int | None = None,
        trials: int = 20,
        seed: int = 0,
        workers=_UNSET,
        workload="uniform",
        messages: int = 60,
        bound: int | None = None,
        metrics: str = "connectivity",
        curve_points: int = 16,
        traffic=None,
    ):
        """Replay a fault process over time (see :func:`repro.temporal_sweep`).

        Each trial compiles one deterministic trace from the per-trial
        SHA-256 seed stream and replays it against the connectivity /
        paths kernels (and, in ``full`` mode, the slotted simulator);
        the summary is byte-identical at any worker count.
        """
        self._check_open()
        from ..obs.metrics import REGISTRY
        from ..obs.trace import span
        from ..temporal.replay import (
            DEFAULT_HORIZON,
            execute_temporal,
            prepare_temporal_sweep,
            summarize_temporal,
        )

        entry = self._cache.entry(spec)
        resolved_horizon = DEFAULT_HORIZON if horizon is None else horizon
        with span("temporal.prepare", spec=entry.canonical, trials=trials,
                  horizon=resolved_horizon):
            prepared = prepare_temporal_sweep(
                entry.spec,
                process,
                faults=faults,
                mtbf=mtbf,
                mttr=mttr,
                law=law,
                horizon=resolved_horizon,
                trials=trials,
                seed=seed,
                workload=workload,
                messages=messages,
                bound=bound,
                metrics=metrics,
                curve_points=curve_points,
                traffic=traffic,
                _net=entry.network,
            )
        effective = self._effective_workers(workers)
        worker_count = effective if isinstance(effective, int) else 1
        with span("temporal.execute", spec=entry.canonical, trials=trials,
                  workers=worker_count):
            rows = execute_temporal(prepared, workers=worker_count)
        REGISTRY.counter(
            "repro_temporal_trials_total",
            "Temporal replay trials executed.",
            {"metrics": metrics},
        ).inc(len(rows))
        if prepared.skipped:
            REGISTRY.counter(
                "repro_temporal_skips_total",
                "Temporal sweeps skipped by max_faults capacity accounting.",
                {"process": prepared.plan.process.key},
            ).inc()
        with span("temporal.summarize", spec=entry.canonical, trials=trials):
            return summarize_temporal(prepared, rows)

    def pooled_survivability_sweeps(self, requests, *, workers=_UNSET):
        """Many sweeps on one persistent pool (request-order summaries).

        Session form of
        :func:`~repro.resilience.sweep.pooled_survivability_sweeps`;
        summaries are byte-identical to it for the same requests.
        """
        self._check_open()
        from ..resilience.sweep import pooled_survivability_sweeps

        executor = self._executor_for(self._effective_workers(workers))
        return pooled_survivability_sweeps(requests, executor=executor)

    def design_search(self, *, workers=_UNSET, **kwargs):
        """Survivability-per-cost search (see :func:`repro.design_search`).

        Candidate sweeps run on the session's persistent executor, and
        candidate *enumeration* is memoized per (families, window) in
        the session cache -- repeated searches over the same window
        skip the family size scan (``candidate_hits`` in
        :meth:`cache_stats`).  The ranked table is byte-identical to
        the module-level search.
        """
        self._check_open()
        from ..design_search.search import design_search as _search

        effective = self._effective_workers(workers)
        return _search(
            workers=effective,
            _executor=self._executor_for(effective),
            _enumerator=self._cache.candidate_specs,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Experiments: the declarative plan/execute/report pipeline
    # ------------------------------------------------------------------
    def experiment(
        self,
        specs,
        *,
        models=("coupler",),
        metrics=("connectivity",),
        trials=100,
        seed: int = 0,
        workers=_UNSET,
        backend: str = "batched",
        workload: str = "uniform",
        messages: int = 60,
        bound: int | None = None,
        max_slots: int = 100_000,
        samplings=("uniform",),
        ci_target: float | None = None,
    ):
        """Declare and run an :class:`~repro.core.experiment.Experiment`.

        Convenience wrapper: builds the frozen plan object and hands it
        to :meth:`run_experiment`.
        """
        from .experiment import Experiment

        plan = Experiment(
            specs=specs,
            models=models,
            metrics=metrics,
            trials=trials,
            seed=seed,
            backend=backend,
            workload=workload,
            messages=messages,
            bound=bound,
            max_slots=max_slots,
            samplings=samplings,
            ci_target=ci_target,
        )
        return self.run_experiment(plan, workers=workers)

    def run_experiment(self, experiment, *, workers=_UNSET):
        """Execute one compiled experiment plan on the session's pool.

        Every cell's summary is byte-identical to calling
        :func:`repro.resilience_sweep` with that cell's parameters.
        """
        self._check_open()
        from dataclasses import replace

        from ..obs.trace import span
        from ..resilience.adaptive import run_adaptive
        from ..resilience.sweep import _prepare_sweep, _summarize
        from ..temporal.processes import FaultProcess
        from ..temporal.replay import (
            DEFAULT_HORIZON,
            execute_temporal,
            prepare_temporal_sweep,
            summarize_temporal,
        )
        from .experiment import ExperimentCell, ExperimentResult

        cells_meta = experiment.compile()
        effective = self._effective_workers(workers)
        executor = self._executor_for(effective)
        # a grid axis may mix frozen fault models and fault *processes*:
        # process cells replay through the temporal engine while the
        # frozen cells share the persistent pool, and the results are
        # reassembled in compile() order
        prepared_list = []
        arrays_list = []
        temporal_prepared: dict[int, object] = {}
        with span("experiment.prepare", cells=len(cells_meta)):
            for index, request in enumerate(cells_meta):
                entry = self._cache.entry(request["spec"])
                if isinstance(request["model"], FaultProcess):
                    temporal_prepared[index] = prepare_temporal_sweep(
                        entry.spec,
                        request["model"],
                        horizon=DEFAULT_HORIZON,
                        trials=request["trials"],
                        seed=request["seed"],
                        workload=request["workload"],
                        messages=request["messages"],
                        bound=request["bound"],
                        metrics=request["metrics"],
                        _net=entry.network,
                    )
                    continue
                baseline = (
                    lambda entry=entry, request=request: entry.baseline(
                        workload=request["workload"],
                        messages=request["messages"],
                        seed=request["seed"],
                        max_slots=request["max_slots"],
                    )
                ) if request["metrics"] == "full" else None
                prepared = _prepare_sweep(
                    entry.spec,
                    request["model"],
                    trials=request["trials"],
                    seed=request["seed"],
                    workload=request["workload"],
                    messages=request["messages"],
                    bound=request["bound"],
                    max_slots=request["max_slots"],
                    metrics=request["metrics"],
                    backend=request["backend"],
                    ci_target=request.get("ci_target"),
                    sampling=request.get("sampling", "uniform"),
                    _net=entry.network,
                    _baseline=baseline,
                )
                if executor.parallel:
                    prepared = replace(prepared, net=None)
                prepared_list.append(prepared)
                arrays_list.append(
                    entry.arrays()
                    if request["backend"] == "vectorized"
                    and not executor.parallel
                    else None
                )
        worker_count = effective if isinstance(effective, int) else 1
        with span("experiment.execute", cells=len(cells_meta)):
            if any(p.ci_target is not None for p in prepared_list):
                # adaptive cells need per-wave stop decisions, so a
                # grid with ci_target runs cell-by-cell on the shared
                # pool (same bytes, no cross-cell chunk interleaving)
                rows_lists = [
                    run_adaptive(prepared, executor, arrays=arrays)
                    if prepared.ci_target is not None
                    else executor.run(prepared, arrays=arrays)
                    for prepared, arrays in zip(prepared_list, arrays_list)
                ]
            else:
                rows_lists = executor.run_many(
                    prepared_list, arrays_list=arrays_list
                )
            temporal_rows = {
                index: execute_temporal(tprep, workers=worker_count)
                for index, tprep in temporal_prepared.items()
            }
        with span("experiment.summarize", cells=len(cells_meta)):
            sweep_results = iter(zip(prepared_list, rows_lists))
            cells = []
            for index, request in enumerate(cells_meta):
                if index in temporal_prepared:
                    tprep = temporal_prepared[index]
                    cells.append(
                        ExperimentCell(
                            spec=tprep.plan.canonical,
                            model=tprep.plan.process.key,
                            faults=tprep.plan.process.faults,
                            metrics=tprep.plan.metrics,
                            backend=request["backend"],
                            sampling=request.get("sampling", "uniform"),
                            summary=summarize_temporal(
                                tprep, temporal_rows[index]
                            ),
                        )
                    )
                    continue
                prepared, rows = next(sweep_results)
                cells.append(
                    ExperimentCell(
                        spec=prepared.plan.canonical,
                        model=prepared.plan.model.key,
                        faults=prepared.plan.model.faults,
                        metrics=prepared.plan.metrics,
                        backend=prepared.plan.backend,
                        sampling=prepared.sampling,
                        summary=_summarize(prepared, rows),
                    )
                )
        return ExperimentResult(experiment=experiment, cells=tuple(cells))


# ----------------------------------------------------------------------
# The default session behind the module-level facade verbs.
# ----------------------------------------------------------------------
_default_session: Session | None = None


def default_session() -> Session:
    """The shared session the module-level facade verbs delegate to.

    Created on first use (and re-created if someone closed it), so
    plain ``repro.build(...)`` / ``repro.resilience_sweep(...)`` users
    get warm caches and pool reuse without ever seeing a session
    object.
    """
    global _default_session
    if _default_session is None or _default_session.closed:
        _default_session = Session()
    return _default_session


def reset_default_session(*, terminate: bool = False) -> None:
    """Close and forget the default session (pools shut down, cache dropped).

    The next facade-verb call starts a cold one; useful for tests and
    the CLI's non-reuse batch mode.  ``terminate=True`` kills pool
    workers instead of draining them (signal-handler teardown).
    """
    global _default_session
    if _default_session is not None:
        _default_session.close(terminate=terminate)
    _default_session = None


atexit.register(reset_default_session)
