"""Named workloads for the facade and the sweep matrix.

A workload is a function ``(net, *, messages, seed, **options) ->
[(src, dst, inject_slot), ...]`` registered under a string key, so
``repro.simulate("sk(6,3,2)", workload="hotspot")`` and the CLI's
``--workload`` flag resolve by name.  The built-ins wrap the
generators of :mod:`repro.simulation.traffic`, deriving network-shaped
defaults (processor count, group size) from the network itself.

>>> sorted(workload_names())
['bernoulli', 'broadcast', 'group-local', 'hotspot', 'permutation', 'uniform']
>>> from repro.networks import POPSNetwork
>>> len(get_workload("permutation")(POPSNetwork(4, 2), messages=0, seed=1))
8
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from ..simulation.traffic import (
    bernoulli_stream,
    broadcast_traffic,
    group_local_traffic,
    hotspot_traffic,
    permutation_traffic,
    uniform_traffic,
)

__all__ = [
    "register_workload",
    "get_workload",
    "workload_names",
    "resolve_workload",
]

Traffic = list[tuple[int, int, int]]
WorkloadFn = Callable[..., Traffic]

_WORKLOADS: dict[str, WorkloadFn] = {}


def register_workload(name: str):
    """Decorator registering a traffic generator under ``name``."""

    def deco(fn: WorkloadFn) -> WorkloadFn:
        key = name.lower()
        if key in _WORKLOADS:
            raise ValueError(f"workload {key!r} is already registered")
        _WORKLOADS[key] = fn
        return fn

    return deco


def get_workload(name: str) -> WorkloadFn:
    """The registered generator for ``name`` (case-insensitive)."""
    try:
        return _WORKLOADS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_WORKLOADS))
        raise ValueError(
            f"unknown workload {name!r}; known workloads: {known}"
        ) from None


def workload_names() -> tuple[str, ...]:
    """All registered workload names, sorted."""
    return tuple(sorted(_WORKLOADS))


def resolve_workload(workload, net, *, messages: int, seed: int, **options) -> Traffic:
    """Traffic triples for ``workload`` on ``net``.

    ``workload`` may be a registered name, a callable with the workload
    signature, or an explicit list of ``(src, dst, slot)`` triples
    (passed through unchanged).

    A callable (or registered) workload may return any iterable of
    triples, including a one-shot generator; the result is materialized
    to a concrete list *here* so downstream consumers that iterate the
    traffic more than once -- ``measure()`` runs it degraded, then again
    on the intact baseline -- never see an exhausted iterator.
    """
    if isinstance(workload, str):
        fn = get_workload(workload)
        return _as_triples(fn(net, messages=messages, seed=seed, **options))
    if callable(workload):
        return _as_triples(workload(net, messages=messages, seed=seed, **options))
    if isinstance(workload, Sequence):
        return [(int(s), int(d), int(t)) for s, d, t in workload]
    raise TypeError(
        f"workload must be a name, callable or triple list, "
        f"got {type(workload).__name__}"
    )


def _as_triples(result) -> Traffic:
    """A workload's return value as a concrete triple list."""
    if isinstance(result, list):
        return result
    if isinstance(result, Iterable):
        return [(int(s), int(d), int(t)) for s, d, t in result]
    raise TypeError(
        f"workload returned {type(result).__name__}; expected an "
        "iterable of (src, dst, slot) triples"
    )


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
@register_workload("uniform")
def _uniform(net, *, messages: int, seed: int, **_options) -> Traffic:
    """Uniform random one-shot messages, ``src != dst``."""
    return uniform_traffic(net.num_processors, messages, seed=seed)


@register_workload("permutation")
def _permutation(net, *, messages: int, seed: int, **_options) -> Traffic:
    """One message per processor along a random permutation."""
    return permutation_traffic(net.num_processors, seed=seed)


@register_workload("hotspot")
def _hotspot(
    net, *, messages: int, seed: int, hotspot: int = 0, fraction: float = 0.5, **_options
) -> Traffic:
    """Uniform traffic with a fraction aimed at one hot processor."""
    return hotspot_traffic(
        net.num_processors, messages, hotspot=hotspot, fraction=fraction, seed=seed
    )


@register_workload("broadcast")
def _broadcast(net, *, messages: int, seed: int, src: int = 0, **_options) -> Traffic:
    """One unicast message from ``src`` to every other processor."""
    return broadcast_traffic(net.num_processors, src=src)


@register_workload("group-local")
def _group_local(
    net, *, messages: int, seed: int, local_fraction: float = 0.8, **_options
) -> Traffic:
    """Mostly intra-group traffic; group size read off the network."""
    group_size = net.num_processors // net.num_groups
    return group_local_traffic(
        net.num_processors,
        group_size,
        messages,
        local_fraction=local_fraction,
        seed=seed,
    )


@register_workload("bernoulli")
def _bernoulli(
    net, *, messages: int, seed: int, slots: int = 50, rate: float = 0.05, **_options
) -> Traffic:
    """Open-loop Bernoulli arrivals (``messages`` is ignored)."""
    return bernoulli_stream(net.num_processors, slots, rate, seed=seed)
