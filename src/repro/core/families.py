"""Built-in family registrations: pops, sk, sii, sops.

Each :func:`~repro.core.registry.register_family` block below is the
*complete* wiring of one topology into the toolkit -- constructor,
router, simulator, optical design, parameter schema and equal-``N``
enumerator.  Adding a fifth family means writing one more block like
these, and every facade entry point, CLI subcommand and comparison
table picks it up automatically.

The routers all return :class:`~repro.routing.stack_routing.StackRoute`
hop lists in optical-design coordinates (``(group, mux)`` couplers and
transmitter ports), so a route can be replayed against the design's
:meth:`trace` regardless of family.
"""

from __future__ import annotations

from functools import lru_cache

from ..graphs.kautz import kautz_num_nodes
from ..networks.design import (
    POPSDesign,
    StackImaseItohDesign,
    StackKautzDesign,
)
from ..networks.pops import POPSNetwork
from ..networks.single_ops import SingleOPSDesign, SingleOPSNetwork, single_ops_simulator
from ..networks.stack_imase_itoh import StackImaseItohNetwork
from ..networks.stack_kautz import StackKautzNetwork
from ..routing.stack_routing import StackHop, StackRoute, stack_kautz_route
from .registry import NetworkFamily, register_family
from .spec import NetworkSpec, Param

__all__ = [
    "POPSFamily",
    "StackKautzFamily",
    "StackImaseItohFamily",
    "SingleOPSFamily",
]


def _ii_hop(d: int, n: int, u: int, v: int) -> StackHop:
    """The design-coordinate hop for base arc ``u -> v`` of ``II+(d, n)``.

    ``u == v`` is the dedicated loop coupler (mux ``d``, port 0); other
    arcs resolve their multiplexer from the Imase-Itoh offset.
    """
    if u == v:
        return StackHop(u, u, mux=d, tx_port=0, is_loop=True)
    a = (-d * u - v) % n
    if not 1 <= a <= d:
        raise ValueError(f"group {v} is not an Imase-Itoh successor of {u}")
    m = a - 1
    return StackHop(u, v, mux=m, tx_port=d - m, is_loop=False)


@lru_cache(maxsize=64)
def _ii_routing_table(d: int, n: int):
    """Exact next-hop table over the loopless ``II(d, n)`` base graph."""
    from ..routing.tables import build_routing_table

    base = StackImaseItohNetwork(1, d, n).base_graph()
    return build_routing_table(base.without_loops())


@register_family
class POPSFamily(NetworkFamily):
    """Single-hop ``POPS(t, g)`` (paper Sec. 2.4, Figs. 4-5, 11)."""

    key = "pops"
    title = "partitioned optical passive star POPS(t, g)"
    params = (
        Param("t", "processors per group (== coupler degree)"),
        Param("g", "number of groups"),
    )
    network_type = POPSNetwork
    aliases = ("partitioned-ops",)
    coupler_kind = "POPS"

    def construct(self, t: int, g: int) -> POPSNetwork:
        return POPSNetwork(t, g)

    def route(self, net: POPSNetwork, src: int, dst: int) -> StackRoute:
        if src == dst:
            return StackRoute(src, dst, ())
        i, j = net.route(src, dst)
        g = net.num_groups
        # Sec. 3.1 port convention: transmitter port j (toward group j)
        # feeds multiplexer g-1-j of the group transmit block.
        hop = StackHop(
            i,
            j,
            mux=g - 1 - j,
            tx_port=net.transmitter_port(src, dst),
            is_loop=i == j,
        )
        return StackRoute(src, dst, (hop,))

    def simulator(self, net: POPSNetwork, policy=None):
        from ..simulation.network_sim import pops_simulator

        return pops_simulator(net, policy)

    def design(self, t: int, g: int) -> POPSDesign:
        return POPSDesign(t, g)

    def sizes(self, target_n: int):
        for g in range(1, target_n + 1):
            if target_n % g == 0:
                yield NetworkSpec("pops", (target_n // g, g))


@register_family
class StackKautzFamily(NetworkFamily):
    """Multi-hop ``SK(s, d, k)`` (paper Sec. 2.7, Definition 4, Fig. 12)."""

    key = "sk"
    title = "stack-Kautz SK(s, d, k)"
    params = (
        Param("s", "stacking factor (processors per group)"),
        Param("d", "Kautz degree"),
        Param("k", "Kautz diameter"),
    )
    network_type = StackKautzNetwork
    aliases = ("stack-kautz", "stackkautz")
    coupler_kind = "Kautz"

    def construct(self, s: int, d: int, k: int) -> StackKautzNetwork:
        return StackKautzNetwork(s, d, k)

    def route(self, net: StackKautzNetwork, src: int, dst: int) -> StackRoute:
        return stack_kautz_route(net, src, dst)

    def fault_route(
        self, net: StackKautzNetwork, src_group: int, dst_group: int, degraded
    ) -> list[int] | None:
        """Sec. 2.5 structured rerouting: the ``<= k + 2`` candidates.

        Word-level :func:`~repro.routing.fault_tolerant.fault_tolerant_route`
        over the scenario's faults (via ``FaultSet.from_indices``); its
        link-fault semantics treat a dead coupler as a dead fiber pair,
        so when that conservative view severs the pair we fall back to
        the registry default -- directed BFS on the survivors.
        """
        from ..routing.fault_tolerant import fault_tolerant_route

        if src_group == dst_group:
            return [src_group]
        faults = degraded.word_fault_set()
        x, y = net.group_word(src_group), net.group_word(dst_group)
        if x not in faults.nodes and y not in faults.nodes:
            path = fault_tolerant_route(x, y, net.degree, faults)
            if path is not None:
                return [net.group_of_word(w) for w in path]
        return super().fault_route(net, src_group, dst_group, degraded)

    def simulator(self, net: StackKautzNetwork, policy=None):
        from ..simulation.network_sim import stack_kautz_simulator

        return stack_kautz_simulator(net, policy)

    def design(self, s: int, d: int, k: int) -> StackKautzDesign:
        return StackKautzDesign(s, d, k)

    def sizes(self, target_n: int):
        for d in range(2, 8):
            for k in range(1, 8):
                groups = kautz_num_nodes(d, k)
                if groups > target_n:
                    break
                if target_n % groups == 0:
                    yield NetworkSpec("sk", (target_n // groups, d, k))

    def candidate_specs(self, *, max_processors: int, min_processors: int = 2):
        """Direct ``(s, d, k)`` enumeration -- same set as the default
        :meth:`~repro.core.registry.NetworkFamily.candidate_specs`
        window scan (``d`` in 2..7, ``k`` in 1..7), without testing
        every ``N`` for divisibility by every group count."""
        for d in range(2, 8):
            for k in range(1, 8):
                groups = kautz_num_nodes(d, k)
                if groups > max_processors:
                    break
                for s in range(1, max_processors // groups + 1):
                    if s * groups >= min_processors:
                        yield NetworkSpec("sk", (s, d, k))


@register_family
class StackImaseItohFamily(NetworkFamily):
    """Any-size ``SII(s, d, n)`` -- the end-of-Sec.-2.7 extension."""

    key = "sii"
    title = "stack-Imase-Itoh SII(s, d, n)"
    params = (
        Param("s", "stacking factor (processors per group)"),
        Param("d", "Imase-Itoh degree", minimum=2),
        Param("n", "number of groups"),
    )
    network_type = StackImaseItohNetwork
    aliases = ("stack-imase-itoh", "stack-ii")
    coupler_kind = "Imase-Itoh"

    def construct(self, s: int, d: int, n: int) -> StackImaseItohNetwork:
        return StackImaseItohNetwork(s, d, n)

    def route(self, net: StackImaseItohNetwork, src: int, dst: int) -> StackRoute:
        d, n = net.degree, net.num_groups
        xs, _ = net.label_of(src)
        xd, _ = net.label_of(dst)
        if src == dst:
            return StackRoute(src, dst, ())
        if xs == xd:
            return StackRoute(src, dst, (_ii_hop(d, n, xs, xs),))
        table = _ii_routing_table(d, n)
        groups = [xs]
        while groups[-1] != xd:
            nxt = table.next_hop(groups[-1], xd)
            if nxt < 0:
                raise ValueError(
                    f"II({d},{n}) cannot route group {xs} -> {xd}"
                )
            groups.append(int(nxt))
        hops = tuple(_ii_hop(d, n, u, v) for u, v in zip(groups, groups[1:]))
        return StackRoute(src, dst, hops)

    def simulator(self, net: StackImaseItohNetwork, policy=None):
        from ..simulation.network_sim import stack_imase_itoh_simulator

        return stack_imase_itoh_simulator(net, policy)

    def design(self, s: int, d: int, n: int) -> StackImaseItohDesign:
        return StackImaseItohDesign(s, d, n)

    def sizes(self, target_n: int):
        for d in (2, 3):
            for n in range(d + 1, target_n + 1):
                if target_n % n == 0:
                    yield NetworkSpec("sii", (target_n // n, d, n))


@register_family
class SingleOPSFamily(NetworkFamily):
    """The single-OPS baseline ``sops(n)`` the paper argues against."""

    key = "sops"
    title = "single-OPS SingleOPS(n)"
    params = (Param("n", "number of processors sharing the one star"),)
    network_type = SingleOPSNetwork
    aliases = ("single-ops", "singleops",)
    coupler_kind = "star"

    def construct(self, n: int) -> SingleOPSNetwork:
        return SingleOPSNetwork(n)

    def route(self, net: SingleOPSNetwork, src: int, dst: int) -> StackRoute:
        net.label_of(src)
        net.label_of(dst)
        if src == dst:
            return StackRoute(src, dst, ())
        hop = StackHop(0, 0, mux=0, tx_port=0, is_loop=False)
        return StackRoute(src, dst, (hop,))

    def simulator(self, net: SingleOPSNetwork, policy=None):
        return single_ops_simulator(net, policy)

    def design(self, n: int) -> SingleOPSDesign:
        return SingleOPSDesign(n)

    def sizes(self, target_n: int):
        yield NetworkSpec("sops", (target_n,))
