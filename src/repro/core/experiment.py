"""Declarative experiments: a plan grid that compiles to one schedule.

Before this module, running "survivability of these machines under
these fault models at these scoring depths" meant hand-writing loops
over :func:`repro.resilience_sweep` (or :func:`repro.sweep`, or
:func:`repro.design_search`) and collecting summaries yourself.  An
:class:`Experiment` is the declarative form of that loop: a frozen
plan object over the grid

    ``specs x fault models x metrics modes x trial counts x samplings``

that **compiles** into one
:func:`~repro.resilience.sweep.pooled_survivability_sweeps`-shaped
schedule, executes on a single (persistent, when run through a
:class:`~repro.core.session.Session`) worker pool, and reports a
structured :class:`ExperimentResult` with ``as_dicts()`` /
``to_json()``.

Determinism: cells are ordered spec-major (specs, then models, then
metrics, then trials, then samplings), every cell reuses the
experiment seed, and each
cell's summary is **byte-identical** to calling
:func:`repro.resilience_sweep` with that cell's parameters.

>>> exp = Experiment(specs=("pops(2,2)",), models=("coupler:1",),
...                  metrics=("connectivity",), trials=4)
>>> [c["spec"] for c in exp.compile()]
['pops(2,2)']
>>> result = exp.run()
>>> result.cells[0].summary.trials
4
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields

from .spec import NetworkSpec

__all__ = ["Experiment", "ExperimentCell", "ExperimentResult"]

#: Sentinel for :meth:`Experiment.run`: "caller did not pass workers",
#: so the target session's own default applies.
_UNSET_WORKERS = object()


def _normalize_tuple(value) -> tuple:
    """One entry or an iterable of entries -> a tuple of entries.

    Grid axes accept single entries of every shape the underlying
    parsers take -- including non-iterable ones (a spec dict, a
    ``NetworkSpec``, a ``FaultModel`` instance) -- so anything that is
    not a proper collection of entries wraps into a 1-tuple.
    """
    if isinstance(value, (str, int, Mapping)):
        return (value,)
    try:
        return tuple(value)
    except TypeError:
        return (value,)


def _make_model_or_process(key: str, intensity: int):
    """Resolve ``key`` in the fault-model registry, then the processes.

    The models axis accepts *fault processes* alongside frozen fault
    models: a process-keyed cell (``"coupler-renewal:2"``) replays
    through the temporal engine instead of the one-shot sweep.
    """
    from ..resilience.faults import FAULT_MODELS, make_fault_model
    from ..temporal.processes import FAULT_PROCESSES, make_fault_process

    normalized = key.strip().lower()
    if normalized in FAULT_MODELS:
        return make_fault_model(normalized, intensity)
    if normalized in FAULT_PROCESSES:
        return make_fault_process(normalized, intensity)
    known = ", ".join(sorted({*FAULT_MODELS, *FAULT_PROCESSES}))
    raise ValueError(
        f"unknown fault model or process {key!r}; known: {known}"
    )


def _parse_model(entry):
    """One model grid entry -> a FaultModel or FaultProcess instance.

    Accepts a :class:`~repro.resilience.faults.FaultModel`, a
    :class:`~repro.temporal.processes.FaultProcess`, a key string
    (``"coupler"``, ``"coupler-renewal"``), a ``"key:faults"`` string
    (``"coupler:2"``) or a ``(key, faults)`` pair.
    """
    from ..resilience.faults import FaultModel
    from ..temporal.processes import FaultProcess

    if isinstance(entry, (FaultModel, FaultProcess)):
        return entry
    if isinstance(entry, str):
        key, sep, faults = entry.partition(":")
        if sep:
            try:
                intensity = int(faults)
            except ValueError:
                raise ValueError(
                    f"malformed fault-model entry {entry!r}: expected "
                    f"'key' or 'key:faults' with integer faults"
                ) from None
            return _make_model_or_process(key, intensity)
        return _make_model_or_process(key, 1)
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        return _make_model_or_process(str(entry[0]), int(entry[1]))
    raise ValueError(
        f"cannot parse a fault model from {entry!r}; pass a FaultModel, "
        f"a FaultProcess, 'key', 'key:faults' or a (key, faults) pair"
    )


@dataclass(frozen=True)
class Experiment:
    """A frozen plan: spec grid x fault models x metrics x trials.

    Parameters are normalized (single entries become one-element
    grids, model entries become :class:`FaultModel` instances, specs
    are canonicalized) and validated at construction, so an experiment
    that exists is an experiment that runs.

    ``backend`` is the *preferred* trial executor; grid cells whose
    metrics mode the backend cannot score fall back automatically
    (``vectorized`` scores ``connectivity`` and ``paths`` but not
    ``full``; ``legacy`` only ``full``), so one plan can mix scoring
    depths.  ``paths`` cells for families with structured
    ``fault_route`` hooks are further downgraded per spec inside the
    sweep preparation; each cell records the backend that actually ran.

    >>> e = Experiment(specs=("pops(2,2)", "sk(2,2,2)"),
    ...                models=("coupler", "processor:2"), trials=8)
    >>> len(e.compile())
    4
    """

    specs: tuple = ()
    models: tuple = ("coupler",)
    metrics: tuple = ("connectivity",)
    trials: tuple = (100,)
    seed: int = 0
    backend: str = "batched"
    workload: str = "uniform"
    messages: int = 60
    bound: int | None = None
    max_slots: int = 100_000
    samplings: tuple = ("uniform",)
    ci_target: float | None = None

    def __post_init__(self) -> None:
        from ..resilience.sweep import METRICS_MODES, SAMPLING_MODES, SWEEP_BACKENDS

        specs = tuple(
            NetworkSpec.parse(s) for s in _normalize_tuple(self.specs)
        )
        if not specs:
            raise ValueError("an experiment needs at least one spec")
        models = tuple(_parse_model(m) for m in _normalize_tuple(self.models))
        if not models:
            raise ValueError("an experiment needs at least one fault model")
        metrics = tuple(_normalize_tuple(self.metrics))
        for mode in metrics:
            if mode not in METRICS_MODES:
                known = ", ".join(sorted(METRICS_MODES))
                raise ValueError(
                    f"unknown metrics mode {mode!r}; known: {known}"
                )
        if not metrics:
            raise ValueError("an experiment needs at least one metrics mode")
        trials = tuple(int(t) for t in _normalize_tuple(self.trials))
        if not trials or any(t < 1 for t in trials):
            raise ValueError(f"trial counts must be >= 1, got {trials}")
        if self.backend not in SWEEP_BACKENDS:
            known = ", ".join(SWEEP_BACKENDS)
            raise ValueError(
                f"unknown sweep backend {self.backend!r}; known: {known}"
            )
        samplings = tuple(_normalize_tuple(self.samplings))
        for mode in samplings:
            if mode not in SAMPLING_MODES:
                known = ", ".join(SAMPLING_MODES)
                raise ValueError(
                    f"unknown sampling mode {mode!r}; known: {known}"
                )
        if not samplings:
            raise ValueError("an experiment needs at least one sampling mode")
        if self.ci_target is not None and not (
            isinstance(self.ci_target, (int, float))
            and not isinstance(self.ci_target, bool)
            and self.ci_target > 0
        ):
            raise ValueError(
                f"ci_target must be a number > 0 or None, "
                f"got {self.ci_target!r}"
            )
        object.__setattr__(self, "specs", specs)
        object.__setattr__(self, "models", models)
        object.__setattr__(self, "metrics", metrics)
        object.__setattr__(self, "trials", trials)
        object.__setattr__(self, "samplings", samplings)

    def _cell_backend(self, metrics_mode: str) -> str:
        """The preferred backend, downgraded where it cannot score.

        ``vectorized`` covers ``connectivity`` and ``paths`` cells;
        only ``full`` (slotted simulation) falls back to ``batched``
        here.  A further per-spec downgrade can still happen inside
        ``_prepare_sweep`` -- ``paths`` cells for families with
        structured ``fault_route`` hooks run batched, and the executed
        backend is what each :class:`ExperimentCell` records.
        """
        if self.backend == "vectorized" and metrics_mode == "full":
            return "batched"
        if self.backend == "legacy" and metrics_mode != "full":
            return "batched"
        return self.backend

    def compile(self) -> list[dict]:
        """The grid flattened into sweep-request dicts, spec-major order.

        One dict per cell, shaped for
        :func:`~repro.resilience.sweep.survivability_sweep` /
        :func:`~repro.resilience.sweep.pooled_survivability_sweeps`
        (``spec`` is the canonical string; ``model`` a
        :class:`FaultModel` instance).
        """
        return [
            dict(
                spec=spec.canonical(),
                model=model,
                trials=trials,
                seed=self.seed,
                workload=self.workload,
                messages=self.messages,
                bound=self.bound,
                max_slots=self.max_slots,
                metrics=metrics_mode,
                backend=self._cell_backend(metrics_mode),
                ci_target=self.ci_target,
                sampling=sampling,
            )
            for spec in self.specs
            for model in self.models
            for metrics_mode in self.metrics
            for trials in self.trials
            for sampling in self.samplings
        ]

    def run(self, *, workers=_UNSET_WORKERS, session=None) -> "ExperimentResult":
        """Execute the plan and return its :class:`ExperimentResult`.

        Runs on ``session`` (default: the shared default session, so
        repeated experiments reuse warm caches and pools).  ``workers``
        follows :func:`repro.resilience_sweep` semantics; when omitted,
        the target session's own default worker count applies.
        """
        from .session import default_session

        target = default_session() if session is None else session
        if workers is _UNSET_WORKERS:
            return target.run_experiment(self)
        return target.run_experiment(self, workers=workers)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view of the plan itself."""
        return {
            "specs": [s.canonical() for s in self.specs],
            "models": [f"{m.key}:{m.faults}" for m in self.models],
            "metrics": list(self.metrics),
            "trials": list(self.trials),
            "seed": self.seed,
            "backend": self.backend,
            "workload": self.workload,
            "messages": self.messages,
            "samplings": list(self.samplings),
            "ci_target": self.ci_target,
        }

    def to_payload(self) -> dict[str, object]:
        """The full constructor-argument dict, JSON-safe.

        Unlike :meth:`as_dict` (the *report* header, whose key set is
        golden-tested), this carries every plan field -- including
        ``bound`` and ``max_slots`` -- so :meth:`from_payload` rebuilds
        an equal plan on the other side of a JSON hop (the serving
        protocol) or a process boundary (experiment shard workers).
        """
        return {**self.as_dict(), "bound": self.bound,
                "max_slots": self.max_slots}

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Experiment":
        """Rebuild a plan from :meth:`to_payload` output (round-trip safe).

        Accepts any mapping of constructor keyword arguments; unknown
        keys raise ``ValueError`` (the serving tier's strict-request
        contract) rather than being dropped silently.

        >>> e = Experiment(specs=("pops(2,2)",), trials=4, bound=5)
        >>> Experiment.from_payload(e.to_payload()) == e
        True
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown experiment field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**dict(payload))


@dataclass(frozen=True)
class ExperimentCell:
    """One executed grid cell: its coordinates plus the sweep summary."""

    spec: str
    model: str
    faults: int
    metrics: str
    backend: str
    sampling: str
    summary: object  # the cell's SweepSummary

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (the summary nested under ``"summary"``)."""
        return {
            "spec": self.spec,
            "model": self.model,
            "faults": self.faults,
            "metrics": self.metrics,
            "backend": self.backend,
            "sampling": self.sampling,
            "summary": self.summary.as_dict(),
        }


@dataclass(frozen=True)
class ExperimentResult:
    """The structured report of one executed :class:`Experiment`."""

    experiment: Experiment
    cells: tuple[ExperimentCell, ...] = field(default_factory=tuple)

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def cell(
        self, spec, *, model=None, metrics=None, trials=None
    ) -> ExperimentCell:
        """The first cell matching the coordinates; ``KeyError`` if none.

        ``model`` accepts the same forms as the experiment's model
        grid; omitted coordinates match anything.
        """
        key = NetworkSpec.parse(spec).canonical()
        want = _parse_model(model) if model is not None else None
        for c in self.cells:
            if c.spec != key:
                continue
            if want is not None and (
                c.model != want.key or c.faults != want.faults
            ):
                continue
            if metrics is not None and c.metrics != metrics:
                continue
            if trials is not None and c.summary.trials != trials:
                continue
            return c
        raise KeyError(
            f"no experiment cell for ({key}, model={model}, "
            f"metrics={metrics}, trials={trials})"
        )

    def as_dicts(self) -> list[dict[str, object]]:
        """All cells as plain dicts, in grid order (JSON-ready)."""
        return [c.as_dict() for c in self.cells]

    def as_dict(self) -> dict[str, object]:
        """The whole report: plan parameters plus the cell list."""
        return {**self.experiment.as_dict(), "cells": self.as_dicts()}

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent.

        Deterministic: the same plan and seed give the same string at
        any worker count, on a cold or a warm session.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def formatted(self) -> str:
        """Human-readable per-cell quantile table."""
        header = (
            f"experiment: {len(self.experiment.specs)} spec(s) x "
            f"{len(self.experiment.models)} model(s) x "
            f"{len(self.experiment.metrics)} metrics mode(s) x "
            f"{len(self.experiment.trials)} trial count(s), "
            f"seed {self.experiment.seed}, backend {self.experiment.backend}"
        )
        blocks = [header]
        for c in self.cells:
            blocks.append("")
            blocks.append(f"[{c.metrics}/{c.backend}] {c.summary.formatted()}")
        return "\n".join(blocks)
