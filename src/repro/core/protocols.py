"""The structural `Network` protocol all families satisfy.

The four topology families (POPS, stack-Kautz, stack-Imase-Itoh,
single-OPS) already share a surface -- processor counts, group
structure, hop distances, a hypergraph model.  This protocol writes
that surface down once, so routing, simulation and analysis code can
be typed (and tested) against *any* network instead of one concrete
class per family.

>>> from repro.networks import POPSNetwork, StackKautzNetwork
>>> isinstance(POPSNetwork(4, 2), Network)
True
>>> isinstance(StackKautzNetwork(6, 3, 2), Network)
True
>>> isinstance(object(), Network)
False
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..hypergraphs.hypergraph import DirectedHypergraph

__all__ = ["Network"]


@runtime_checkable
class Network(Protocol):
    """What every multi-OPS network exposes.

    ``isinstance`` checks verify attribute presence only (structural
    typing); the registry completeness tests exercise the semantics.
    """

    @property
    def num_processors(self) -> int:
        """Total processor count ``N``."""
        ...

    @property
    def num_groups(self) -> int:
        """Number of processor groups (1 for single-OPS)."""
        ...

    @property
    def num_couplers(self) -> int:
        """Number of OPS couplers."""
        ...

    @property
    def diameter(self) -> int:
        """Optical hop diameter."""
        ...

    @property
    def processor_degree(self) -> int:
        """Transceiver pairs per processor."""
        ...

    @property
    def coupler_degree(self) -> int:
        """Inputs (== outputs) per OPS coupler -- the splitting factor."""
        ...

    def label_of(self, processor: int) -> tuple[int, int]:
        """``(group, index)`` label of a flat processor id."""
        ...

    def hop_distance(self, src: int, dst: int) -> int:
        """Optical hops needed from ``src`` to ``dst``."""
        ...

    def hypergraph_model(self) -> DirectedHypergraph:
        """The directed-hypergraph model the simulator runs on."""
        ...
