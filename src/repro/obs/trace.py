"""Span-based tracing, exportable as Chrome trace-event JSON.

Instrumented code wraps its stages in :func:`span`::

    with span("sweep.execute", trials=n, backend="vectorized"):
        rows = run(...)

When tracing is disabled (the default) ``span`` returns a shared no-op
context manager -- no object allocation, no clock reads -- so the hot
paths pay only a module-global ``is None`` check.  When a
:class:`Tracer` is installed (:func:`enable_tracing`, or the CLI's
``--trace out.json``), each span records one *complete* event with
wall-clock epoch timestamps, so events recorded in different processes
(sweep workers, shard subprocesses) land on one common timeline.

Exports:

* :meth:`Tracer.export_chrome` -- Chrome trace-event JSON
  (``{"traceEvents": [...]}``), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* :meth:`Tracer.export_ndjson` -- one event per line, for ``jq`` and
  log shippers.

Tracing is strictly a side channel: spans observe timing, never
results, and every instrumented path produces byte-identical output
with tracing on or off.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "Tracer",
    "span",
    "add_complete_event",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "tracing_enabled",
    "now_us",
]


def now_us() -> int:
    """Wall-clock epoch microseconds (comparable across processes)."""
    return time.time_ns() // 1000


class Tracer:
    """A thread-safe collector of complete ('ph: X') trace events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def add_complete(
        self,
        name: str,
        start_us: int,
        duration_us: int,
        args: dict | None = None,
        pid: int | None = None,
        tid: int | None = None,
    ) -> None:
        """Record one complete event (a closed span)."""
        event = {
            "name": name,
            "ph": "X",
            "ts": int(start_us),
            "dur": max(int(duration_us), 0),
            "pid": int(os.getpid() if pid is None else pid),
            "tid": int(
                threading.get_ident() % 2**31 if tid is None else tid
            ),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def events(self) -> list[dict]:
        """A snapshot of recorded events, ordered by start time."""
        with self._lock:
            events = list(self._events)
        return sorted(events, key=lambda e: (e["ts"], e["name"]))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def chrome_payload(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> None:
        """Write :meth:`chrome_payload` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_payload(), handle, sort_keys=True)
            handle.write("\n")

    def export_ndjson(self, path: str) -> None:
        """Write one JSON event per line to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")


_TRACER: Tracer | None = None


class _NullSpan:
    """The shared do-nothing span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times its block, records one complete event."""

    __slots__ = ("_tracer", "_name", "_args", "_start_us")

    def __init__(self, tracer: Tracer, name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start_us = 0

    def __enter__(self) -> "_Span":
        self._start_us = now_us()
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.add_complete(
            self._name, self._start_us, now_us() - self._start_us, self._args
        )
        return False


def span(name: str, **args):
    """A context manager timing ``name``; no-op when tracing is off."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, args)


def add_complete_event(
    name: str,
    start_us: int,
    duration_us: int,
    args: dict | None = None,
    pid: int | None = None,
    tid: int | None = None,
) -> None:
    """Record an already-timed event (e.g. shipped from a worker).

    No-op when tracing is disabled, like :func:`span` -- callers hand
    over timings they measured anyway and let the tracer decide.
    """
    tracer = _TRACER
    if tracer is not None:
        tracer.add_complete(name, start_us, duration_us, args, pid, tid)


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the active tracer; spans start recording."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def disable_tracing() -> Tracer | None:
    """Uninstall the active tracer (returned for export), if any."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    return tracer


def get_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER is not None
