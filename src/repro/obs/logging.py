"""Structured JSON access logs and request-id generation for serving.

One :class:`AccessLogger` per server writes one JSON object per line
(sorted keys, flushed) so the log is greppable, ``jq``-able, and safe
under concurrent writers.  :func:`new_request_id` mints the short hex
ids the server echoes as ``X-Repro-Request-Id`` and attaches to spans,
tying a log line, a trace span, and a client-visible header to the
same request.
"""

from __future__ import annotations

import json
import sys
import threading
import uuid

__all__ = ["AccessLogger", "new_request_id"]


def new_request_id() -> str:
    """A 16-hex-char unique request id."""
    return uuid.uuid4().hex[:16]


class AccessLogger:
    """Writes one sorted-key JSON object per line to a sink.

    ``target`` is ``"-"`` for stderr, a path (opened for append), or
    any file-like object with ``write``.  Lines are emitted under a
    lock and flushed immediately, so entries from concurrent
    connections never interleave and are visible as they happen.
    """

    def __init__(self, target="-") -> None:
        self._lock = threading.Lock()
        self._owns_handle = False
        if target == "-" or target is None:
            self._handle = sys.stderr
        elif hasattr(target, "write"):
            self._handle = target
        else:
            self._handle = open(target, "a", encoding="utf-8")
            self._owns_handle = True

    def log(self, **fields) -> None:
        """Emit one JSON log line with the given fields."""
        line = json.dumps(fields, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Close the underlying handle if this logger opened it."""
        if self._owns_handle:
            with self._lock:
                self._handle.close()
                self._owns_handle = False
