"""Process-level facts for health probes: uptime, RSS, version.

``/healthz`` and ``/stats`` report these so probes can detect restarts
(uptime reset), leaks (RSS growth), and mixed deployments (version
skew).  RSS is read from ``/proc/self/statm`` where available, falling
back to ``resource.getrusage`` peak RSS elsewhere.
"""

from __future__ import annotations

import os
import time

__all__ = ["uptime_seconds", "rss_bytes", "process_info"]

_START_TIME = time.time()

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def uptime_seconds() -> float:
    """Seconds since this module was first imported in this process."""
    return time.time() - _START_TIME


def rss_bytes() -> int:
    """Resident set size in bytes (0 if unknowable on this platform)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kb) * 1024
    except Exception:  # pragma: no cover
        return 0


def process_info() -> dict:
    """``{uptime_seconds, rss_bytes, version}`` for probes."""
    from repro import __version__

    return {
        "uptime_seconds": round(uptime_seconds(), 3),
        "rss_bytes": rss_bytes(),
        "version": __version__,
    }
