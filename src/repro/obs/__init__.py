"""Observability: metrics, span tracing, access logs, process probes.

The layer every execution path reports into and the serving tier
exposes:

* :mod:`repro.obs.metrics` -- the process-wide :data:`REGISTRY` of
  counters/gauges/histograms, fork-aware worker registries, and
  Prometheus text exposition (``GET /metrics``);
* :mod:`repro.obs.trace` -- :func:`span`-based tracing of sweep
  stages, cache builds, chunk dispatch, design-search candidate loops
  and serve requests, exported as Perfetto-loadable Chrome trace JSON
  (``--trace out.json``);
* :mod:`repro.obs.logging` -- structured JSON access logs and the
  request ids echoed as ``X-Repro-Request-Id``;
* :mod:`repro.obs.process` -- uptime / RSS / version for ``/healthz``.

All instrumentation is side-channel only: results are byte-identical
with observability on or off, at any worker or shard count.
"""

from repro.obs.logging import AccessLogger, new_request_id
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    reset_worker_registry,
    worker_registry,
)
from repro.obs.process import process_info, rss_bytes, uptime_seconds
from repro.obs.trace import (
    Tracer,
    add_complete_event,
    disable_tracing,
    enable_tracing,
    get_tracer,
    now_us,
    span,
    tracing_enabled,
)

__all__ = [
    "AccessLogger",
    "new_request_id",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "reset_worker_registry",
    "worker_registry",
    "process_info",
    "rss_bytes",
    "uptime_seconds",
    "Tracer",
    "add_complete_event",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "now_us",
    "span",
    "tracing_enabled",
]
