"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every instrument of a process,
keyed by ``(name, sorted label items)``.  Three instrument kinds cover
everything the serving tier and the sweep executors report:

* :class:`Counter` -- monotone totals (requests served, trials run);
* :class:`Gauge` -- point-in-time levels (queue depth, cache size);
* :class:`Histogram` -- fixed-bucket latency distributions with
  deterministic p50/p95/p99 estimates (linear interpolation inside
  the winning bucket, so the same observations always summarize to
  the same numbers).

Everything is stdlib-only and thread-safe: the registry serializes
instrument creation on one lock and each instrument serializes its own
updates, so server threads, pool callbacks and the event loop can all
record concurrently.

**Fork-awareness** is the part the sweep executors lean on.  A
``multiprocessing`` worker forked mid-run inherits the parent's
registry *contents*, so workers never ship their inherited global
state back; instead each worker process records into a dedicated
*worker registry* that the pool initializer resets
(:func:`reset_worker_registry`) and each finished chunk drains
(:meth:`MetricsRegistry.drain`) into a JSON-safe snapshot shipped home
with the rows.  The parent merges those deltas at join
(:meth:`MetricsRegistry.merge`) -- counters and histogram buckets add,
gauges take the max -- all commutative, so the merged totals are
deterministic for any worker count and join order.

>>> r = MetricsRegistry()
>>> r.counter("jobs_total", "jobs run").inc()
>>> r.counter("jobs_total").inc(2)
>>> r.counter("jobs_total").value
3
>>> h = r.histogram("latency_seconds", "job latency")
>>> h.observe(0.004); h.observe(0.004); h.observe(0.09)
>>> h.summary()["count"]
3
>>> other = MetricsRegistry()
>>> other.merge(r.snapshot())
>>> other.counter("jobs_total").value
3
"""

from __future__ import annotations

import bisect
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "worker_registry",
    "reset_worker_registry",
]

#: Default histogram bucket upper bounds, in seconds: microbenchmark
#: floor to multi-minute sweeps.  The ``+Inf`` bucket is implicit.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats via repr."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_suffix(labels: tuple[tuple[str, str], ...], extra=()) -> str:
    """The ``{k="v",...}`` block of one sample line (may be empty)."""
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total (an ``int`` when the total is whole)."""
        with self._lock:
            value = self._value
        return int(value) if value == int(value) else value


class Gauge:
    """A point-in-time level; merges across processes by max."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def merge_max(self, value: float) -> None:
        """Keep the larger of the current and incoming value."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        with self._lock:
            value = self._value
        return int(value) if value == int(value) else value


class Histogram:
    """Fixed-bucket distribution with deterministic quantile estimates.

    ``buckets`` are the finite upper bounds (ascending); an implicit
    ``+Inf`` bucket catches the tail.  Quantiles interpolate linearly
    inside the winning bucket -- the classic Prometheus
    ``histogram_quantile`` estimate -- so two histograms holding the
    same counts report identical p50/p95/p99 regardless of the
    observation order that produced them.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets=DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram buckets must be ascending and unique: {buckets!r}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def merge_counts(self, counts, total_sum: float, count: int) -> None:
        """Fold another histogram's state in (bucket-wise addition)."""
        if len(counts) != len(self._counts):
            raise ValueError(
                f"cannot merge histograms with {len(counts)} vs "
                f"{len(self._counts)} buckets"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += total_sum
            self._count += count

    def state(self) -> tuple[list[int], float, int]:
        """``(per-bucket counts, sum, count)`` -- one atomic snapshot."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the buckets."""
        counts, _, total = self.state()
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = 0.0 if index == 0 else self.buckets[index - 1]
                if index >= len(self.buckets):  # the +Inf bucket
                    return lower
                upper = self.buckets[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1] if self.buckets else 0.0

    def summary(self) -> dict[str, float]:
        """JSON-ready ``{count, sum, mean, p50, p95, p99}`` digest."""
        _, total_sum, count = self.state()
        return {
            "count": count,
            "sum": round(total_sum, 6),
            "mean": round(total_sum / count, 6) if count else 0.0,
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All instruments of one process (or one worker), by name + labels.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call fixes the instrument's kind and help text, later calls with
    the same name return the existing series (a conflicting kind
    raises).  Labels distinguish series under one name; every
    ``(name, labels)`` pair is its own instrument.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> {"kind": str, "help": str, "buckets": tuple | None}
        self._families: dict[str, dict] = {}
        #: (name, labels-tuple) -> instrument
        self._series: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Get-or-create.
    # ------------------------------------------------------------------
    def _instrument(self, kind, name, help_text, labels, buckets=None):
        label_key = (
            () if not labels
            else tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = {
                    "kind": kind,
                    "help": help_text,
                    "buckets": tuple(buckets) if buckets else None,
                }
                self._families[name] = family
            elif family["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {family['kind']}, not a {kind}"
                )
            elif help_text and not family["help"]:
                family["help"] = help_text
            key = (name, label_key)
            instrument = self._series.get(key)
            if instrument is None:
                if kind == "histogram":
                    instrument = Histogram(family["buckets"] or DEFAULT_BUCKETS)
                else:
                    instrument = _KINDS[kind]()
                self._series[key] = instrument
            return instrument

    def counter(self, name, help_text="", labels=None) -> Counter:
        """The counter series for ``(name, labels)``."""
        return self._instrument("counter", name, help_text, labels)

    def gauge(self, name, help_text="", labels=None) -> Gauge:
        """The gauge series for ``(name, labels)``."""
        return self._instrument("gauge", name, help_text, labels)

    def histogram(
        self, name, help_text="", labels=None, buckets=None
    ) -> Histogram:
        """The histogram series for ``(name, labels)``.

        ``buckets`` (finite ascending upper bounds) applies on first
        creation of the family; later calls inherit it.
        """
        return self._instrument(
            "histogram", name, help_text, labels, buckets=buckets
        )

    def series(self, name) -> dict[tuple, object]:
        """``labels-tuple -> instrument`` for one family (a snapshot)."""
        with self._lock:
            return {
                labels: instrument
                for (n, labels), instrument in self._series.items()
                if n == name
            }

    # ------------------------------------------------------------------
    # Snapshots, merging, reset -- the fork-aware side.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic JSON-safe dump of every family and series.

        Shape: ``{name: {"kind", "help", "buckets", "series":
        [[labels, payload], ...]}}``, names and label sets sorted.
        Counter/gauge payloads are plain numbers; histogram payloads
        are ``[counts, sum, count]``.
        """
        with self._lock:
            families = {
                name: dict(family) for name, family in self._families.items()
            }
            items = sorted(self._series.items())
        out: dict[str, dict] = {}
        for (name, labels), instrument in items:
            family = families[name]
            entry = out.setdefault(
                name,
                {
                    "kind": family["kind"],
                    "help": family["help"],
                    "buckets": (
                        list(family["buckets"]) if family["buckets"] else None
                    ),
                    "series": [],
                },
            )
            if family["kind"] == "histogram":
                counts, total_sum, count = instrument.state()
                payload = [counts, total_sum, count]
                if entry["buckets"] is None:
                    entry["buckets"] = list(instrument.buckets)
            else:
                payload = instrument.value
            entry["series"].append([[list(pair) for pair in labels], payload])
        return out

    def drain(self) -> dict:
        """Snapshot, then forget everything -- the per-chunk delta.

        Worker processes call this after each finished chunk so the
        shipped snapshot contains exactly the activity of that chunk,
        never fork-inherited or already-shipped state.
        """
        snap = self.snapshot()
        self.reset()
        return snap

    def reset(self) -> None:
        """Drop every family and series (a fresh registry)."""
        with self._lock:
            self._families.clear()
            self._series.clear()

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges max.

        Every operation is commutative and associative, so merging N
        worker deltas yields the same totals in any join order -- the
        determinism the sweep executors promise.
        """
        for name in sorted(snap):
            entry = snap[name]
            kind = entry["kind"]
            for labels_list, payload in entry["series"]:
                labels = {k: v for k, v in labels_list}
                if kind == "counter":
                    self.counter(name, entry["help"], labels).inc(payload)
                elif kind == "gauge":
                    self.gauge(name, entry["help"], labels).merge_max(payload)
                else:
                    histogram = self.histogram(
                        name, entry["help"], labels,
                        buckets=entry["buckets"],
                    )
                    counts, total_sum, count = payload
                    histogram.merge_counts(counts, total_sum, count)

    # ------------------------------------------------------------------
    # Prometheus text exposition.
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        ``# HELP``/``# TYPE`` per family, then one sample line per
        series -- histograms expand to cumulative ``_bucket`` lines
        (``le`` upper bounds, ``+Inf`` last), ``_sum`` and ``_count``.
        Families and series render sorted, so the exposition is
        deterministic for a given registry state.
        """
        snap = self.snapshot()
        lines: list[str] = []
        for name in sorted(snap):
            entry = snap[name]
            kind = entry["kind"]
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {kind}")
            for labels_list, payload in entry["series"]:
                labels = tuple((k, v) for k, v in labels_list)
                if kind != "histogram":
                    lines.append(
                        f"{name}{_label_suffix(labels)} "
                        f"{_format_value(payload)}"
                    )
                    continue
                counts, total_sum, count = payload
                bounds = [
                    _format_value(b) for b in (entry["buckets"] or [])
                ] + ["+Inf"]
                cumulative = 0
                for bound, bucket_count in zip(bounds, counts):
                    cumulative += bucket_count
                    suffix = _label_suffix(labels, extra=(("le", bound),))
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                lines.append(
                    f"{name}_sum{_label_suffix(labels)} "
                    f"{_format_value(total_sum)}"
                )
                lines.append(f"{name}_count{_label_suffix(labels)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry: parents merge worker deltas into this,
#: the CLI and the serving tier render it.
REGISTRY = MetricsRegistry()

#: The per-worker-process registry (see the module docstring): reset
#: by pool initializers, drained per chunk, merged by the parent.
_WORKER_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :data:`REGISTRY`."""
    return REGISTRY


def worker_registry() -> MetricsRegistry:
    """The per-worker-process registry chunk runners record into."""
    return _WORKER_REGISTRY


def reset_worker_registry() -> None:
    """Forget fork-inherited worker state (pool initializers call this)."""
    _WORKER_REGISTRY.reset()
