"""Analytic capacity bounds for slotted multi-OPS networks.

Each single-wavelength coupler delivers at most one message per slot,
so a network's deliverable throughput is bounded by how much useful
work its couplers can do simultaneously.  These bounds give the
simulator (EXT-2/6) a theoretical yardstick:

* single-OPS: 1 message/slot, full stop;
* ``POPS(t, g)``: at most ``g**2`` messages/slot, and under uniform
  traffic at most ``N = t*g`` transmissions/slot are *sourced* (each
  processor one message per coupler -- but a processor holds one
  message per destination coupler, so the binding constraint is
  ``min(g**2, offered)``);
* ``SK(s, d, k)``: each delivered message consumes ``h`` coupler-slots
  (its hop count), so sustainable delivery rate is
  ``num_couplers / mean_hops`` messages/slot.
"""

from __future__ import annotations

from ..graphs.properties import average_distance
from ..networks.pops import POPSNetwork
from ..networks.single_ops import SingleOPSNetwork
from ..networks.stack_kautz import StackKautzNetwork

__all__ = [
    "single_ops_capacity",
    "pops_capacity",
    "stack_kautz_capacity",
    "stack_kautz_mean_hops_uniform",
]


def single_ops_capacity(net: SingleOPSNetwork) -> float:
    """Messages/slot deliverable by one star: exactly 1 (single-hop).

    With a virtual topology each message costs ``mean hops`` star
    slots, so capacity drops to ``1 / mean_hops``.
    """
    if net.virtual_topology is None:
        return 1.0
    return 1.0 / max(average_distance(net.virtual_topology), 1.0)


def pops_capacity(net: POPSNetwork) -> float:
    """Messages/slot ceiling for ``POPS(t, g)``: one per coupler, g**2.

    Uniform random traffic cannot saturate all couplers evenly when
    group loads fluctuate, so measured throughput sits below this.
    """
    return float(net.num_couplers)


def stack_kautz_mean_hops_uniform(net: StackKautzNetwork) -> float:
    """Mean optical hops of uniform random traffic on ``SK(s, d, k)``.

    Averages the hop distance over ordered processor pairs (src != dst):
    group-graph distance, except 1 for same-group siblings.
    """
    base = net.base_graph().without_loops()
    n_g = net.num_groups
    s = net.stacking_factor
    # Sum of distances between distinct groups, weighted s*s pairs each.
    total = 0
    for u in range(n_g):
        dist = base.bfs_distances(u)
        for v in range(n_g):
            if v != u:
                total += int(dist[v]) * s * s
    # Same-group sibling pairs: distance 1 via loop coupler.
    total += n_g * s * (s - 1) * 1
    pairs = net.num_processors * (net.num_processors - 1)
    return total / pairs


def stack_kautz_capacity(net: StackKautzNetwork) -> float:
    """Messages/slot ceiling for uniform traffic on ``SK(s, d, k)``.

    Every delivery consumes ``mean_hops`` coupler-slots and the network
    has ``num_couplers`` coupler-slots per slot:
    ``num_couplers / mean_hops``.
    """
    return net.num_couplers / stack_kautz_mean_hops_uniform(net)
