"""Moore bounds and node-optimality of the paper's graph families.

The paper (Sec. 2.5) recalls that Kautz graphs are "optimal with
respect to the number of nodes if d > 2".  The yardstick is the
directed Moore bound: a digraph of max out-degree ``d`` and diameter
``k`` has at most ``1 + d + d^2 + ... + d^k`` nodes.  No digraph with
``d, k >= 2`` attains it (Bridges-Toueg); Kautz graphs reach
``d^k + d^{k-1}`` -- the best known for most parameters and provably
maximal for ``d > 2``... hence "optimal" in the degree/diameter-table
sense.  These helpers quantify the gap for Kautz, de Bruijn and
Imase-Itoh families.
"""

from __future__ import annotations

from ..graphs.imase_itoh import imase_itoh_diameter_bound
from ..graphs.kautz import kautz_num_nodes

__all__ = [
    "moore_bound_digraph",
    "kautz_moore_ratio",
    "debruijn_moore_ratio",
    "best_known_nodes",
    "imase_itoh_efficiency",
]


def moore_bound_digraph(d: int, k: int) -> int:
    """``1 + d + d**2 + ... + d**k``: the directed Moore bound.

    >>> moore_bound_digraph(2, 3)
    15
    """
    if d < 1 or k < 0:
        raise ValueError(f"need d >= 1 and k >= 0, got d={d}, k={k}")
    if d == 1:
        return k + 1
    return (d ** (k + 1) - 1) // (d - 1)


def kautz_moore_ratio(d: int, k: int) -> float:
    """``N_Kautz / MooreBound``: how close Kautz gets (-> 1 - 1/d as k grows).

    >>> round(kautz_moore_ratio(5, 4), 3)
    0.96
    """
    return kautz_num_nodes(d, k) / moore_bound_digraph(d, k)


def debruijn_moore_ratio(d: int, k: int) -> float:
    """``d**k / MooreBound``: the de Bruijn fraction (strictly below Kautz).

    >>> debruijn_moore_ratio(2, 3) < kautz_moore_ratio(2, 3)
    True
    """
    if d < 1 or k < 1:
        raise ValueError(f"need d >= 1 and k >= 1, got d={d}, k={k}")
    return d**k / moore_bound_digraph(d, k)


def best_known_nodes(d: int, k: int) -> int:
    """Largest known node count for degree ``d``, diameter ``k``: Kautz's.

    For the (d, k) digraph problem the Kautz count ``d^k + d^{k-1}`` is
    the record holder cited by the paper ([18], [13]).
    """
    return kautz_num_nodes(d, k)


def imase_itoh_efficiency(d: int, n: int) -> float:
    """``n / MooreBound(d, diam_bound)``: size efficiency of ``II(d, n)``.

    Imase-Itoh graphs trade a possibly one-larger diameter for complete
    freedom in ``n``; this ratio quantifies the trade at each size.
    """
    k = imase_itoh_diameter_bound(d, n)
    return n / moore_bound_digraph(d, k)
