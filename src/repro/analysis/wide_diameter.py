"""Wide diameter and fault diameter: the structure behind the k+2 claim.

The paper's fault-tolerance sentence (routing of length <= k+2
surviving d-1 faults) is, in graph terms, a statement about the
``d``-wide diameter of the Kautz graph: the smallest L such that every
ordered pair is joined by ``d`` internally node-disjoint paths of
length <= L.  Survival follows because d-1 faults can kill at most
d-1 of the d disjoint paths.

This module measures both quantities exactly on small graphs:

* :func:`min_max_disjoint_path_length` -- for one pair, the smallest L
  admitting ``w`` node-disjoint paths of length <= L (binary search
  over L with a length-bounded unit-flow feasibility test);
* :func:`wide_diameter` -- the max over pairs;
* :func:`fault_diameter` -- max over pairs of the worst surviving
  distance under the worst (w-1)-node fault set (exhaustive; use tiny
  graphs only).

Known values for Kautz graphs (Du, Hsu et al.): the d-wide diameter of
``KG(d, k)`` is at most ``k + 2``, matching the paper's routing bound;
the benchmarks regenerate this.
"""

from __future__ import annotations

import itertools

from ..graphs.digraph import DiGraph

__all__ = [
    "disjoint_paths_within",
    "min_max_disjoint_path_length",
    "wide_diameter",
    "fault_diameter",
]


def disjoint_paths_within(g: DiGraph, s: int, t: int, max_len: int) -> int:
    """Max number of internally node-disjoint s->t paths of length <= max_len.

    Backtracking search over short simple paths; exact for the small,
    highly connected graphs used here (n <= ~40).
    """
    if s == t:
        raise ValueError("s and t must differ")
    return len(_greedy_disjoint_paths(g, s, t, max_len))


def _greedy_disjoint_paths(
    g: DiGraph, s: int, t: int, max_len: int
) -> list[list[int]]:
    """Greedy-with-backtracking search for short node-disjoint paths.

    Finds a maximum-cardinality set of internally node-disjoint
    ``s -> t`` paths of length <= ``max_len`` for the small, highly
    connected graphs used here.  Exhaustive over path choices with
    memoized pruning; exponential in principle, fine at n <= ~40.
    """
    best: list[list[int]] = []

    def all_short_paths(blocked: frozenset[int]) -> list[list[int]]:
        # BFS enumerating simple paths of length <= max_len avoiding blocked.
        out: list[list[int]] = []
        stack = [[s]]
        while stack:
            path = stack.pop()
            u = path[-1]
            if len(path) - 1 > max_len:
                continue
            for v in g.successors(u).tolist():
                if v == t:
                    if len(path) <= max_len:
                        out.append(path + [t])
                    continue
                if v in blocked or v in path or v == s:
                    continue
                if len(path) - 1 < max_len - 1:
                    stack.append(path + [v])
        return out

    def extend(
        chosen: list[list[int]],
        blocked: frozenset[int],
        used_first: frozenset[int],
    ) -> None:
        nonlocal best
        if len(chosen) > len(best):
            best = list(chosen)
        cands = [p for p in all_short_paths(blocked) if p[1] not in used_first]
        # order by length: short paths block fewer nodes
        cands.sort(key=len)
        seen_first: set[int] = set()
        for cand in cands:
            # Disjoint paths use distinct first hops: branch per first
            # hop and consume it (this also terminates the recursion
            # for direct s -> t arcs, which block no internal node).
            first = cand[1]
            if first in seen_first:
                continue
            seen_first.add(first)
            extend(
                chosen + [cand],
                blocked | frozenset(cand[1:-1]),
                used_first | {first},
            )

    extend([], frozenset(), frozenset())
    return best


def min_max_disjoint_path_length(
    g: DiGraph, s: int, t: int, width: int
) -> int | None:
    """Smallest L such that ``width`` node-disjoint s->t paths of length
    <= L exist; ``None`` if even L = n is not enough (width too large).
    """
    if s == t:
        raise ValueError("s and t must differ")
    lo = int(g.bfs_distances(s)[t])
    if lo < 0:
        return None
    for L in range(lo, g.num_nodes + 1):
        if disjoint_paths_within(g, s, t, L) >= width:
            return L
    return None


def wide_diameter(g: DiGraph, width: int, pairs: list[tuple[int, int]] | None = None) -> int:
    """Max over pairs of :func:`min_max_disjoint_path_length`.

    With ``pairs=None`` all ordered pairs are scanned (small graphs
    only); a pair list restricts the scan for spot checks.
    """
    worst = 0
    it = pairs if pairs is not None else [
        (s, t)
        for s in range(g.num_nodes)
        for t in range(g.num_nodes)
        if s != t
    ]
    for s, t in it:
        L = min_max_disjoint_path_length(g, s, t, width)
        if L is None:
            raise ValueError(f"no {width} disjoint paths for pair ({s}, {t})")
        worst = max(worst, L)
    return worst


def fault_diameter(g: DiGraph, num_faults: int) -> int:
    """Exact fault diameter: worst surviving distance over all
    ``num_faults``-node fault sets and all surviving pairs.

    Exhaustive -- use only on figure-sized graphs.
    """
    n = g.num_nodes
    worst = 0
    nodes = list(range(n))
    for faulty in itertools.combinations(nodes, num_faults):
        fset = set(faulty)
        alive = [v for v in nodes if v not in fset]
        # distances in the surviving subgraph
        sub_arcs = [
            (u, v)
            for u, v in g.arc_array().tolist()
            if u not in fset and v not in fset
        ]
        relabel = {v: i for i, v in enumerate(alive)}
        sub = DiGraph(len(alive), [(relabel[u], relabel[v]) for u, v in sub_arcs])
        for s in range(sub.num_nodes):
            dist = sub.bfs_distances(s)
            if (dist < 0).any():
                raise ValueError(
                    f"fault set {faulty} disconnects the graph"
                )
            worst = max(worst, int(dist.max()))
    return worst
