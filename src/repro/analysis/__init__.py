"""Quantitative analysis: Moore bounds, cost/performance comparisons.

* :mod:`repro.analysis.moore_bounds` -- the (d, k) digraph yardstick
  behind the paper's "optimal" claims;
* :mod:`repro.analysis.comparison` -- hardware/diameter trade tables
  across POPS and stack-Kautz families.
"""

from .comparison import (
    TopologyRow,
    equal_size_comparison,
    pops_row,
    stack_kautz_row,
    topology_row,
)
from .throughput import (
    pops_capacity,
    single_ops_capacity,
    stack_kautz_capacity,
    stack_kautz_mean_hops_uniform,
)
from .wide_diameter import (
    disjoint_paths_within,
    fault_diameter,
    min_max_disjoint_path_length,
    wide_diameter,
)
from .moore_bounds import (
    best_known_nodes,
    debruijn_moore_ratio,
    imase_itoh_efficiency,
    kautz_moore_ratio,
    moore_bound_digraph,
)

__all__ = [
    "TopologyRow",
    "best_known_nodes",
    "debruijn_moore_ratio",
    "equal_size_comparison",
    "imase_itoh_efficiency",
    "kautz_moore_ratio",
    "disjoint_paths_within",
    "fault_diameter",
    "min_max_disjoint_path_length",
    "moore_bound_digraph",
    "pops_capacity",
    "single_ops_capacity",
    "stack_kautz_capacity",
    "stack_kautz_mean_hops_uniform",
    "wide_diameter",
    "pops_row",
    "stack_kautz_row",
    "topology_row",
]
