"""Cross-topology cost/performance comparison tables.

The quantitative story the paper tells qualitatively: single-hop POPS
buys diameter 1 with ``g`` transceiver pairs per processor and ``g**2``
couplers, while multi-hop stack-Kautz holds the processor at ``d + 1``
transceiver pairs and pays diameter ``k``.  These builders produce the
rows the EXT benchmarks print, for any parameter sweep.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

from ..graphs.kautz import kautz_num_nodes
from ..networks.design import (
    MultiOPSOTISDesign,
    POPSDesign,
    StackKautzDesign,
)
from ..optical.components import Receiver, Transmitter
from ..optical.power import PowerBudget

__all__ = ["TopologyRow", "pops_row", "stack_kautz_row", "equal_size_comparison"]


@dataclass(frozen=True)
class TopologyRow:
    """One comparison-table row."""

    name: str
    processors: int
    groups: int
    diameter: int
    transceivers_per_processor: int
    couplers: int
    coupler_degree: int
    otis_stages: int
    lenses: int
    splitting_loss_db: float
    link_margin_db: float

    def formatted(self) -> str:
        """Fixed-width table row."""
        return (
            f"{self.name:<16} N={self.processors:<6} groups={self.groups:<5} "
            f"diam={self.diameter:<2} tx/node={self.transceivers_per_processor:<3} "
            f"couplers={self.couplers:<6} deg={self.coupler_degree:<4} "
            f"otis={self.otis_stages:<4} lenses={self.lenses:<6} "
            f"split={self.splitting_loss_db:5.2f}dB margin={self.link_margin_db:6.2f}dB"
        )

    @staticmethod
    def header() -> str:
        """Column legend."""
        return (
            "topology         N        groups      diam tx/node couplers     "
            "coupler-deg otis  lenses  split-loss link-margin"
        )


def _margin(design: MultiOPSOTISDesign) -> float:
    budget: PowerBudget = design.worst_case_power_budget(
        Transmitter(), Receiver()
    )
    return budget.margin_db()


def pops_row(t: int, g: int) -> TopologyRow:
    """Comparison row for ``POPS(t, g)``."""
    design = POPSDesign(t, g)
    bom = design.bill_of_materials()
    return TopologyRow(
        name=f"POPS({t},{g})",
        processors=t * g,
        groups=g,
        diameter=1,
        transceivers_per_processor=g,
        couplers=bom.couplers,
        coupler_degree=t,
        otis_stages=bom.total_otis_stages,
        lenses=bom.total_lenses,
        splitting_loss_db=10.0 * math.log10(t),
        link_margin_db=_margin(design),
    )


def stack_kautz_row(s: int, d: int, k: int) -> TopologyRow:
    """Comparison row for ``SK(s, d, k)``."""
    design = StackKautzDesign(s, d, k)
    bom = design.bill_of_materials()
    return TopologyRow(
        name=f"SK({s},{d},{k})",
        processors=s * kautz_num_nodes(d, k),
        groups=kautz_num_nodes(d, k),
        diameter=k,
        transceivers_per_processor=d + 1,
        couplers=bom.couplers,
        coupler_degree=s,
        otis_stages=bom.total_otis_stages,
        lenses=bom.total_lenses,
        splitting_loss_db=10.0 * math.log10(s),
        link_margin_db=_margin(design),
    )


def equal_size_comparison(target_n: int, max_rows: int = 12) -> list[TopologyRow]:
    """Rows for every POPS and SK configuration matching ``target_n`` exactly.

    The apples-to-apples view: same processor count, different
    hardware/diameter trades.
    """
    rows: list[TopologyRow] = []
    for g in range(1, target_n + 1):
        if target_n % g == 0:
            t = target_n // g
            if t >= 1 and g >= 1:
                rows.append(pops_row(t, g))
        if len(rows) >= max_rows:
            break
    for d in range(2, 8):
        for k in range(1, 8):
            groups = kautz_num_nodes(d, k)
            if groups > target_n:
                break
            if target_n % groups == 0:
                s = target_n // groups
                rows.append(stack_kautz_row(s, d, k))
    return rows
