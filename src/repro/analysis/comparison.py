"""Cross-topology cost/performance comparison tables.

The quantitative story the paper tells qualitatively: single-hop POPS
buys diameter 1 with ``g`` transceiver pairs per processor and ``g**2``
couplers, while multi-hop stack-Kautz holds the processor at ``d + 1``
transceiver pairs and pays diameter ``k``.  Rows are built *generically*
from a :class:`~repro.core.spec.NetworkSpec` through the family
registry -- network shape from the :class:`~repro.core.protocols.Network`
protocol surface, hardware counts and power margin from the family's
optical design -- so a newly registered family appears in these tables
without touching this module.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, fields

from ..core.registry import get_family
from ..core.spec import NetworkSpec

__all__ = [
    "TopologyRow",
    "topology_row",
    "pops_row",
    "stack_kautz_row",
    "equal_size_comparison",
]

#: Families included in :func:`equal_size_comparison` by default -- the
#: two the paper's own comparison discusses.  Pass ``families=...`` (or
#: ``repro.core.family_keys()`` for everything) to widen the table.
DEFAULT_COMPARISON_FAMILIES: tuple[str, ...] = ("pops", "sk")


@dataclass(frozen=True)
class TopologyRow:
    """One comparison-table row."""

    name: str
    processors: int
    groups: int
    diameter: int
    transceivers_per_processor: int
    couplers: int
    coupler_degree: int
    otis_stages: int
    lenses: int
    splitting_loss_db: float
    link_margin_db: float

    def formatted(self) -> str:
        """Fixed-width table row."""
        return (
            f"{self.name:<16} N={self.processors:<6} groups={self.groups:<5} "
            f"diam={self.diameter:<2} tx/node={self.transceivers_per_processor:<3} "
            f"couplers={self.couplers:<6} deg={self.coupler_degree:<4} "
            f"otis={self.otis_stages:<4} lenses={self.lenses:<6} "
            f"split={self.splitting_loss_db:5.2f}dB margin={self.link_margin_db:6.2f}dB"
        )

    @staticmethod
    def header() -> str:
        """Column legend."""
        return (
            "topology         N        groups      diam tx/node couplers     "
            "coupler-deg otis  lenses  split-loss link-margin"
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view of the row."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def topology_row(spec) -> TopologyRow:
    """The comparison row for any registered network spec.

    >>> topology_row("sk(6,3,2)").processors
    72
    """
    parsed = NetworkSpec.parse(spec)
    net = parsed.build()
    dsg = parsed.design()
    bom = dsg.bill_of_materials()
    return TopologyRow(
        name=str(net),
        processors=net.num_processors,
        groups=net.num_groups,
        diameter=net.diameter,
        transceivers_per_processor=net.processor_degree,
        couplers=bom.couplers,
        coupler_degree=net.coupler_degree,
        otis_stages=bom.total_otis_stages,
        lenses=bom.total_lenses,
        splitting_loss_db=10.0 * math.log10(max(net.coupler_degree, 1)),
        link_margin_db=dsg.worst_case_power_budget().margin_db(),
    )


def pops_row(t: int, g: int) -> TopologyRow:
    """Comparison row for ``POPS(t, g)`` (shim over :func:`topology_row`)."""
    return topology_row(NetworkSpec("pops", (t, g)))


def stack_kautz_row(s: int, d: int, k: int) -> TopologyRow:
    """Comparison row for ``SK(s, d, k)`` (shim over :func:`topology_row`)."""
    return topology_row(NetworkSpec("sk", (s, d, k)))


def equal_size_comparison(
    target_n: int,
    max_rows: int = 12,
    families: tuple[str, ...] = DEFAULT_COMPARISON_FAMILIES,
) -> list[TopologyRow]:
    """Rows for every configuration matching ``target_n`` exactly.

    The apples-to-apples view: same processor count, different
    hardware/diameter trades.  Each family contributes at most
    ``max_rows`` rows, enumerated by its registered equal-``N``
    size enumerator.
    """
    rows: list[TopologyRow] = []
    for key in families:
        family = get_family(key)
        count = 0
        for spec in family.sizes(target_n):
            if count >= max_rows:
                break
            rows.append(topology_row(spec))
            count += 1
    return rows
