"""repro -- OTIS-based multi-hop multi-OPS lightwave networks.

A full reproduction of Coudert, Ferreira, Munoz, *OTIS-Based Multi-Hop
Multi-OPS Lightwave Networks* (WOCS/IPPS'99, LNCS 1586): graph
substrates (Kautz, Imase-Itoh, de Bruijn, stack-graphs), optical
substrates (OTIS, OPS couplers, power budgets), the POPS and
stack-Kautz networks, their complete OTIS optical designs with
end-to-end light-path verification, routing (label-induced and
fault-tolerant), collectives, embeddings, and a slotted discrete-event
simulator.

Quickstart
----------
Every network is named by a spec string -- ``"sk(6,3,2)"``,
``"pops(4,2)"``, ``"sii(4,3,10)"``, ``"sops(8)"`` -- and the facade
verbs drive any family end to end:

>>> import repro
>>> net = repro.build("sk(6,3,2)")                # paper Fig. 7
>>> net.num_processors, net.diameter
(72, 2)
>>> design = repro.design("sk(6,3,2)")            # paper Fig. 12
>>> design.verify()
True
>>> design.bill_of_materials().otis_units[(3, 12)]
1
>>> repro.route("sk(6,3,2)", 0, 71).num_hops
1
>>> repro.simulate("sk(6,3,2)", "uniform", messages=100).num_messages
100
>>> result = repro.sweep(["pops(4,2)", "sk(2,2,2)"], ["uniform"], messages=50)
>>> [cell.spec for cell in result]
['pops(4,2)', 'sk(2,2,2)']

The concrete classes remain available (``repro.StackKautzDesign(6, 3, 2)``
is the same object ``repro.design("sk(6,3,2)")`` returns), and new
topology families join every verb above through one
:func:`repro.register_family` registration.

Subpackages
-----------
:mod:`repro.core`
    Network specs, the family registry and the facade verbs.
:mod:`repro.graphs`
    Digraph kernel and the named families the paper builds on.
:mod:`repro.hypergraphs`
    Directed hypergraphs and stack-graphs (Definition 1).
:mod:`repro.optical`
    OTIS, OPS couplers, components, lens layouts, power budgets.
:mod:`repro.networks`
    POPS / stack-Kautz / stack-Imase-Itoh and their optical designs
    (Sections 3-4, Proposition 1, Corollary 1).
:mod:`repro.routing`
    Label-induced shortest-path and fault-tolerant routing.
:mod:`repro.comm`
    Broadcast, gossip, embeddings.
:mod:`repro.simulation`
    Slotted discrete-event simulation with traffic generators.
:mod:`repro.resilience`
    Fault injection, degraded-mode operation, Monte-Carlo
    survivability sweeps.
:mod:`repro.analysis`
    Moore bounds and cross-topology comparisons.
:mod:`repro.design_search`
    Resilience-aware design search: candidate enumeration, BOM
    costing, survivability-per-cost ranking and Pareto fronts.  The
    package doubles as the facade verb -- it is a *callable module*,
    so ``repro.design_search(max_processors=48, ...)`` runs the
    search while ``repro.design_search.CostModel`` (and every import
    form) still reaches the namespace.
:mod:`repro.obs`
    Observability: process-wide metrics registry (Prometheus text
    exposition), span tracing (Chrome trace-event export), structured
    access logs -- all stdlib-only timing side channels.
:mod:`repro.temporal`
    Temporal dynamics: seeded MTBF/MTTR failure/repair processes,
    availability-over-time replay against the kernels and the slotted
    simulator, and traffic-matrix engineering (utilization,
    dimensioning, overload-driven degraded routing).
"""

from . import (
    analysis,
    comm,
    core,
    design_search,  # the callable package: verb and namespace in one
    graphs,
    hypergraphs,
    networks,
    obs,
    optical,
    resilience,
    routing,
    simulation,
    temporal,
)
from .core import (
    Experiment,
    ExperimentCell,
    ExperimentResult,
    Network,
    NetworkFamily,
    NetworkSpec,
    Session,
    SpecCache,
    SpecError,
    SweepCell,
    SweepResult,
    build,
    default_session,
    degrade,
    describe,
    design,
    experiment,
    get_family,
    family_keys,
    register_family,
    reset_default_session,
    resilience_sweep,
    route,
    simulate,
    sweep,
    temporal_sweep,
)
from .design_search import (
    DEFAULT_COST_MODEL,
    PARALLELISM_MODES,
    CostModel,
    DesignCandidate,
    DesignSearchResult,
)
from .resilience import (
    METRICS_MODES,
    SWEEP_BACKENDS,
    DegradedNetwork,
    FaultModel,
    FaultScenario,
    PersistentSweepExecutor,
    SweepSummary,
    make_fault_model,
    pooled_survivability_sweeps,
    survivability_sweep,
)
from .graphs import (
    DiGraph,
    debruijn_graph,
    imase_itoh_graph,
    kautz_graph,
    kautz_graph_with_loops,
    kautz_num_nodes,
)
from .hypergraphs import DirectedHypergraph, Hyperarc, StackGraph, stack_graph
from .networks import (
    OTISImaseItohRealization,
    POPSDesign,
    POPSNetwork,
    SingleOPSDesign,
    SingleOPSNetwork,
    StackImaseItohDesign,
    StackImaseItohNetwork,
    StackKautzDesign,
    StackKautzNetwork,
    imase_itoh_view,
    otis_for_kautz,
)
from .optical import OTIS, OPSCoupler, OTISLayout, PowerBudget
from .routing import (
    FaultSet,
    fault_tolerant_route,
    kautz_distance,
    kautz_route,
    stack_kautz_route,
)
from .simulation import (
    SlottedSimulator,
    pops_simulator,
    run_traffic,
    simulator_for,
    stack_kautz_simulator,
)
from .temporal import (
    FaultProcess,
    FaultTrace,
    TemporalSummary,
    TrafficMatrix,
    make_fault_process,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_COST_MODEL",
    "METRICS_MODES",
    "OTIS",
    "PARALLELISM_MODES",
    "SWEEP_BACKENDS",
    "CostModel",
    "DegradedNetwork",
    "DesignCandidate",
    "DesignSearchResult",
    "DiGraph",
    "DirectedHypergraph",
    "Experiment",
    "ExperimentCell",
    "ExperimentResult",
    "FaultModel",
    "FaultProcess",
    "FaultScenario",
    "FaultSet",
    "FaultTrace",
    "Hyperarc",
    "Network",
    "NetworkFamily",
    "NetworkSpec",
    "OPSCoupler",
    "OTISImaseItohRealization",
    "OTISLayout",
    "POPSDesign",
    "POPSNetwork",
    "PersistentSweepExecutor",
    "PowerBudget",
    "Session",
    "SingleOPSDesign",
    "SingleOPSNetwork",
    "SlottedSimulator",
    "SpecCache",
    "SpecError",
    "StackGraph",
    "StackImaseItohDesign",
    "StackImaseItohNetwork",
    "StackKautzDesign",
    "StackKautzNetwork",
    "SweepCell",
    "SweepResult",
    "SweepSummary",
    "TemporalSummary",
    "TrafficMatrix",
    "analysis",
    "build",
    "core",
    "default_session",
    "degrade",
    "describe",
    "design",
    "design_search",
    "comm",
    "debruijn_graph",
    "experiment",
    "family_keys",
    "fault_tolerant_route",
    "get_family",
    "graphs",
    "hypergraphs",
    "imase_itoh_graph",
    "imase_itoh_view",
    "kautz_distance",
    "kautz_graph",
    "kautz_graph_with_loops",
    "kautz_num_nodes",
    "kautz_route",
    "make_fault_model",
    "make_fault_process",
    "networks",
    "obs",
    "optical",
    "otis_for_kautz",
    "pooled_survivability_sweeps",
    "pops_simulator",
    "register_family",
    "reset_default_session",
    "resilience",
    "resilience_sweep",
    "route",
    "routing",
    "run_traffic",
    "survivability_sweep",
    "simulate",
    "simulator_for",
    "simulation",
    "stack_graph",
    "stack_kautz_route",
    "stack_kautz_simulator",
    "sweep",
    "temporal",
    "temporal_sweep",
]
